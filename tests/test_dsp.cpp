// Tests for the DSP substrate: filter design, ROM symmetry, ring buffer,
// rate tracking, the restoring divider and the golden SRC model.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "dsp/divider.hpp"
#include "dsp/filter.hpp"
#include "dsp/filter_design.hpp"
#include "dsp/golden_src.hpp"
#include "dsp/input_buffer.hpp"
#include "dsp/polyphase.hpp"
#include "dsp/rate_tracker.hpp"
#include "dsp/stimulus.hpp"
#include "dsp/time_quantizer.hpp"

namespace scflow::dsp {
namespace {

using P = SrcParams;

TEST(FilterDesign, PrototypeIsSymmetricAndPeaksAtCentre) {
  const auto h = design_prototype(P::kProtoLen, P::kNumPhases);
  ASSERT_EQ(h.size(), static_cast<std::size_t>(P::kProtoLen));
  const int c = P::kProtoLen / 2;
  for (int i = 0; i < P::kProtoLen; ++i)
    EXPECT_NEAR(h[i], h[P::kProtoLen - 1 - i], 1e-12) << "asymmetry at " << i;
  for (int i = 0; i < P::kProtoLen; ++i) EXPECT_LE(std::abs(h[i]), std::abs(h[c]) + 1e-12);
}

TEST(FilterDesign, BranchGainsNearUnity) {
  const auto h = design_prototype(P::kProtoLen, P::kNumPhases);
  const auto half = quantise_prototype_half(h, P::kNumPhases);
  CoefficientRom rom(half);
  // Every polyphase branch's DC gain should be close to (and below) 1.0.
  for (int p = 0; p <= P::kNumPhases; ++p) {
    std::int64_t sum = 0;
    for (int k = 0; k < P::kTapsPerPhase; ++k) sum += rom.at(proto_index(p, k));
    EXPECT_LE(sum, 32768);
    EXPECT_GT(sum, 32768 * 0.8) << "branch " << p << " gain too low";
  }
}

TEST(FilterDesign, BesselI0Sanity) {
  EXPECT_NEAR(bessel_i0(0.0), 1.0, 1e-12);
  EXPECT_NEAR(bessel_i0(1.0), 1.2660658, 1e-6);
  EXPECT_NEAR(bessel_i0(5.0), 27.2398718, 1e-5);
}

TEST(CoefficientRomTest, MirrorsUpperHalf) {
  const auto rom = make_default_rom();
  for (int i = 0; i < P::kProtoLen; ++i)
    EXPECT_EQ(rom.at(i), rom.at(P::kProtoLen - 1 - i));
  EXPECT_EQ(rom.stored_half().size(), static_cast<std::size_t>(P::kProtoHalfLen));
}

TEST(CoefficientRomTest, RejectsWrongSize) {
  EXPECT_THROW(CoefficientRom(std::vector<std::int16_t>(5)), std::invalid_argument);
}

TEST(PolyphaseIterator, MatchesDirectInterpolation) {
  const auto rom = make_default_rom();
  PolyphaseFilter pf(rom);
  for (int phase : {0, 7, 31}) {
    for (int mu : {0, 1, 511, 1023}) {
      auto it = pf.coefficients(phase, mu);
      for (int k = 0; k < P::kTapsPerPhase; ++k, ++it)
        EXPECT_EQ(*it, interpolated_coeff(rom, phase, mu, k));
    }
  }
}

TEST(PolyphaseIterator, MuZeroIsBranchCoefficient) {
  const auto rom = make_default_rom();
  PolyphaseFilter pf(rom);
  auto it = pf.coefficients(12, 0);
  for (int k = 0; k < P::kTapsPerPhase; ++k, ++it)
    EXPECT_EQ(*it, rom.at(proto_index(12, k)));
}

TEST(InputBufferTest, WriteReadRoundtrip) {
  InputBuffer buf;
  auto w = buf.writer();
  for (int i = 0; i < 10; ++i) w.push(static_cast<std::int16_t>(i * 100));
  auto r = buf.reader_at_lag(0);
  EXPECT_EQ(*r, 900);
  --r;
  EXPECT_EQ(*r, 800);
}

TEST(InputBufferTest, ReadIteratorWrapsBelowZero) {
  InputBuffer buf;
  auto r = buf.reader_at_index(0);
  --r;  // wraps to top
  EXPECT_EQ(r.index(), static_cast<unsigned>(InputBuffer::kSize - 1));
  ++r;
  EXPECT_EQ(r.index(), 0u);
}

TEST(InputBufferTest, OverwriteAfterWrap) {
  InputBuffer buf;
  auto w = buf.writer();
  for (int i = 0; i < InputBuffer::kSize + 5; ++i) w.push(static_cast<std::int16_t>(i));
  EXPECT_EQ(buf.head(), static_cast<std::uint64_t>(InputBuffer::kSize + 5));
  EXPECT_EQ(*buf.reader_at_lag(0), InputBuffer::kSize + 4);
  // The slot that held sample 0 now holds sample kSize.
  EXPECT_EQ(*buf.reader_at_index(0), InputBuffer::kSize);
}

// Property: stepping a read iterator backwards N times from lag L lands on
// the sample written N+L positions before the newest, for any wrap state.
TEST(InputBufferTest, IteratorLagProperty) {
  InputBuffer buf;
  auto w = buf.writer();
  for (int i = 0; i < 200; ++i) {
    w.push(static_cast<std::int16_t>(i));
    if (i < InputBuffer::kSize) continue;
    for (unsigned lag : {0u, 1u, 7u, 31u, 63u}) {
      auto r = buf.reader_at_lag(lag);
      EXPECT_EQ(*r, static_cast<std::int16_t>(i - lag));
    }
  }
}

TEST(FilterAccumulate, ImpulseRecoversCoefficients) {
  const auto romv = make_default_rom();
  PolyphaseFilter pf(romv);
  InputBuffer buf;
  auto w = buf.writer();
  // Unit impulse at the newest sample: accumulator = c[0] * 1.
  for (int i = 0; i < 20; ++i) w.push(0);
  w.push(1 << 14);
  const std::int64_t acc = filter_accumulate(buf.reader_at_lag(0), pf.coefficients(5, 0));
  EXPECT_EQ(acc, static_cast<std::int64_t>(1 << 14) * romv.at(proto_index(5, 0)));
}

TEST(RoundSaturate, RoundingAndClipping) {
  EXPECT_EQ(round_saturate_output(0), 0);
  EXPECT_EQ(round_saturate_output(1ll << 15), 1);
  EXPECT_EQ(round_saturate_output((1ll << 14)), 1);      // rounds half up
  EXPECT_EQ(round_saturate_output((1ll << 14) - 1), 0);  // just below half
  EXPECT_EQ(round_saturate_output(-(1ll << 15)), -1);
  EXPECT_EQ(round_saturate_output(40000ll << 15), 32767);   // clips high
  EXPECT_EQ(round_saturate_output(-40000ll << 15), -32768); // clips low
}

TEST(RestoringDividerTest, MatchesIntegerDivision) {
  // Directed corners plus a sweep.
  EXPECT_EQ(RestoringDivider::divide(0, 1), 0u);
  EXPECT_EQ(RestoringDivider::divide(100, 7), 14u);
  EXPECT_EQ(RestoringDivider::divide(0xffffffffu, 1), 0xffffffffu);
  EXPECT_EQ(RestoringDivider::divide(0xffffffffu, 0xffff), 0xffffffffu / 0xffffu);
  std::uint64_t x = 0x1234abcd;
  for (int i = 0; i < 5000; ++i) {
    x ^= x << 13; x ^= x >> 7; x ^= x << 17;
    const auto n = static_cast<std::uint32_t>(x);
    const auto d = static_cast<std::uint16_t>((x >> 32) | 1);
    EXPECT_EQ(RestoringDivider::divide(n, d), n / d);
  }
}

TEST(RestoringDividerTest, TakesExactly32Steps) {
  RestoringDivider d;
  d.start(1000, 3);
  int steps = 0;
  while (!d.done()) { d.step(); ++steps; }
  EXPECT_EQ(steps, 32);
  EXPECT_EQ(d.quotient(), 333u);
  EXPECT_EQ(d.remainder(), 1u);
  EXPECT_THROW(d.step(), std::logic_error);
}

TEST(RateTrackerTest, NominalIncrementBeforeWindows) {
  RateTracker t(SrcMode::k44_1To48, 0);
  EXPECT_EQ(t.increment(), P::nominal_increment(SrcMode::k44_1To48));
  EXPECT_FALSE(t.tracking());
}

TEST(RateTrackerTest, ConvergesToMeasuredRatio) {
  RateTracker t(SrcMode::k48To48, 1'600'000);  // wrong nominal on purpose
  // Feed 44.1k-ish inputs and 48k-ish outputs in ps.
  std::uint64_t tin = 0, tout = 0;
  for (int i = 0; i < 40; ++i) {
    tin += P::kPeriod44k1Ps;
    t.on_input(tin);
    tout += P::kPeriod48kPs;
    t.on_output(tout);
  }
  ASSERT_TRUE(t.tracking());
  const double ratio = static_cast<double>(t.increment()) / 32768.0;
  EXPECT_NEAR(ratio, 44100.0 / 48000.0, 0.001);
}

TEST(RateTrackerTest, DivideIncrementClamps) {
  EXPECT_EQ(RateTracker::divide_increment(1, 1'000'000), P::kIncMin);
  EXPECT_EQ(RateTracker::divide_increment(1'000'000, 1), P::kIncMax);
  EXPECT_EQ(RateTracker::divide_increment(0, 0), P::kIncMax);
  EXPECT_EQ(RateTracker::divide_increment(4, 2), 2ll << 15);
}

TEST(TimeQuantizerTest, CeilToEdges) {
  TimeQuantizer q(40'000);
  EXPECT_EQ(q.quantize_ps(1), 40'000u);
  EXPECT_EQ(q.quantize_ps(39'999), 40'000u);
  EXPECT_EQ(q.quantize_ps(40'000), 40'000u);  // on-edge observed at the edge
  EXPECT_EQ(q.quantize_ps(40'001), 80'000u);
  EXPECT_EQ(q.quantize_ps(0), 40'000u);       // nothing before the first edge
  EXPECT_EQ(q.quantize_cycles(40'001), 2u);
}

// ---- Golden model behaviour ----

std::vector<StereoSample> run_golden(AlgorithmicSrc& src, const std::vector<SrcEvent>& ev) {
  std::vector<StereoSample> out;
  for (const auto& e : ev) {
    if (e.is_input) src.push_input(e.t_ps, e.sample);
    else out.push_back(src.pull_output(e.t_ps));
  }
  return out;
}

TEST(GoldenSrc, StartupProducesSilenceThenAudio) {
  AlgorithmicSrc src(SrcMode::k44_1To48, AlgorithmicSrc::TimeBase::kContinuousPs);
  const auto inputs = make_sine_stimulus(400, 1000.0, 44100.0);
  const auto ev = make_schedule(inputs, P::kPeriod44k1Ps, 400, P::kPeriod48kPs);
  const auto out = run_golden(src, ev);
  ASSERT_EQ(out.size(), 400u);
  EXPECT_EQ(out[0], (StereoSample{0, 0}));  // before startup fill
  bool nonzero = false;
  for (const auto& s : out)
    if (s.left != 0) nonzero = true;
  EXPECT_TRUE(nonzero);
  EXPECT_TRUE(src.started());
}

TEST(GoldenSrc, ConvertsSineWithGoodSnr) {
  AlgorithmicSrc src(SrcMode::k44_1To48, AlgorithmicSrc::TimeBase::kContinuousPs);
  const auto inputs = make_sine_stimulus(4000, 1000.0, 44100.0);
  const auto ev = make_schedule(inputs, P::kPeriod44k1Ps, 4000, P::kPeriod48kPs);
  const auto out = run_golden(src, ev);
  // Skip the startup transient, measure the steady-state tone.
  std::vector<std::int16_t> tail;
  for (std::size_t i = 1000; i < out.size(); ++i) tail.push_back(out[i].left);
  const double snr = tone_snr_db(tail, 1000.0, 48000.0);
  EXPECT_GT(snr, 40.0) << "resampled tone too distorted";
}

TEST(GoldenSrc, PassthroughModeTracksUnity) {
  AlgorithmicSrc src(SrcMode::k48To48, AlgorithmicSrc::TimeBase::kContinuousPs);
  const auto inputs = make_noise_stimulus(2000, 99);
  const auto ev = make_schedule(inputs, P::kPeriod48kPs, 2000, P::kPeriod48kPs);
  run_golden(src, ev);
  EXPECT_TRUE(src.tracking());
  EXPECT_NEAR(static_cast<double>(src.increment()), 32768.0, 2.0);
}

TEST(GoldenSrc, DownsamplingModeWorks) {
  AlgorithmicSrc src(SrcMode::k48To44_1, AlgorithmicSrc::TimeBase::kContinuousPs);
  const auto inputs = make_sine_stimulus(4000, 1000.0, 48000.0);
  const auto ev = make_schedule(inputs, P::kPeriod48kPs, 3000, P::kPeriod44k1Ps);
  const auto out = run_golden(src, ev);
  std::vector<std::int16_t> tail;
  for (std::size_t i = 1000; i < out.size(); ++i) tail.push_back(out[i].left);
  EXPECT_GT(tone_snr_db(tail, 1000.0, 44100.0), 40.0);
}

// Paper Fig. 7: quantising event times to the clock grid changes output
// values; the two time bases must *differ* (that is the effect) while both
// remaining audio-quality conversions.
TEST(GoldenSrc, TimeQuantisationChangesOutputs) {
  AlgorithmicSrc cont(SrcMode::k44_1To48, AlgorithmicSrc::TimeBase::kContinuousPs);
  AlgorithmicSrc quant(SrcMode::k44_1To48, AlgorithmicSrc::TimeBase::kQuantizedCycles);
  const auto inputs = make_sine_stimulus(3000, 1000.0, 44100.0);
  const auto ev = make_schedule(inputs, P::kPeriod44k1Ps, 3000, P::kPeriod48kPs);
  const auto out_c = run_golden(cont, ev);
  const auto out_q = run_golden(quant, ev);
  ASSERT_EQ(out_c.size(), out_q.size());
  std::size_t diffs = 0;
  std::int64_t max_err = 0;
  for (std::size_t i = 0; i < out_c.size(); ++i) {
    if (out_c[i] != out_q[i]) ++diffs;
    max_err = std::max<std::int64_t>(max_err, std::abs(out_c[i].left - out_q[i].left));
  }
  EXPECT_GT(diffs, 0u) << "quantisation should perturb outputs";
  EXPECT_LT(max_err, 1024) << "perturbation should be small, not a malfunction";
}

TEST(GoldenSrc, QuantizedBaseIsDeterministic) {
  const auto inputs = make_noise_stimulus(1500, 7);
  const auto ev = make_schedule(inputs, P::kPeriod44k1Ps, 1500, P::kPeriod48kPs);
  AlgorithmicSrc a(SrcMode::k44_1To48, AlgorithmicSrc::TimeBase::kQuantizedCycles);
  AlgorithmicSrc b(SrcMode::k44_1To48, AlgorithmicSrc::TimeBase::kQuantizedCycles);
  EXPECT_EQ(run_golden(a, ev), run_golden(b, ev));
}

TEST(GoldenSrc, CornerBugTriggersAndPerturbsOutputs) {
  const auto inputs = make_sine_stimulus(3000, 500.0, 48000.0);
  // Pass-through mode: exact alignment (mu == 0, phase == 0) recurs, which
  // is the corner the injected bug lives in.
  const auto ev = make_schedule(inputs, P::kPeriod48kPs, 3000, P::kPeriod48kPs);
  AlgorithmicSrc good(SrcMode::k48To48, AlgorithmicSrc::TimeBase::kQuantizedCycles, false);
  AlgorithmicSrc bad(SrcMode::k48To48, AlgorithmicSrc::TimeBase::kQuantizedCycles, true);
  const auto out_good = run_golden(good, ev);
  const auto out_bad = run_golden(bad, ev);
  EXPECT_GT(bad.corner_bug_triggers(), 0u);
  EXPECT_NE(out_good, out_bad);
}

TEST(GoldenSrc, DepthStaysWithinValidityContract) {
  // Drive with a deliberately mismatched mode so the depth drifts to the
  // cap before tracking takes over; reads must still stay within the
  // 55-sample validity window the checking memory enforces.
  AlgorithmicSrc src(SrcMode::k48To44_1, AlgorithmicSrc::TimeBase::kQuantizedCycles);
  const auto inputs = make_noise_stimulus(4000, 3);
  const auto ev = make_schedule(inputs, P::kPeriod44k1Ps, 4000, P::kPeriod48kPs);
  for (const auto& e : ev) {
    if (e.is_input) src.push_input(e.t_ps, e.sample);
    else src.pull_output(e.t_ps);
    EXPECT_LE(src.depth(), DepthConstants::kMaxDepth);
    if (src.started()) EXPECT_GT(src.depth(), 0);
  }
}

TEST(Stimulus, ScheduleOrdersInputsFirstOnTies) {
  std::vector<StereoSample> ins(4);
  const auto ev = make_schedule(ins, 100, 4, 100);  // identical periods: all ties
  for (std::size_t i = 0; i + 1 < ev.size(); i += 2) {
    EXPECT_TRUE(ev[i].is_input);
    EXPECT_FALSE(ev[i + 1].is_input);
    EXPECT_EQ(ev[i].t_ps, ev[i + 1].t_ps);
  }
}

TEST(Stimulus, SnrMeasurementDetectsCleanTone) {
  const auto s = make_sine_stimulus(4096, 1000.0, 48000.0);
  std::vector<std::int16_t> left;
  for (const auto& v : s) left.push_back(v.left);
  EXPECT_GT(tone_snr_db(left, 1000.0, 48000.0), 50.0);
  // Noise should measure terribly against any single tone.
  const auto n = make_noise_stimulus(4096, 1);
  std::vector<std::int16_t> nl;
  for (const auto& v : n) nl.push_back(v.left);
  EXPECT_LT(tone_snr_db(nl, 1000.0, 48000.0), 10.0);
}

}  // namespace
}  // namespace scflow::dsp
