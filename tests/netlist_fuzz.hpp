// Shared random-netlist generators for the gate-level fuzz harnesses:
// test_fuzz_equivalence (table vs reference evaluator vs compiled
// backend) and test_compiled_sim (independent-lane differential) build
// their structural netlists and four-valued stimulus from the same
// generators so a seed means the same design everywhere.
#pragma once

#include <random>
#include <vector>

#include "dtypes/logic.hpp"
#include "netlist/netlist.hpp"

namespace scflow {

/// Random structural netlist: input ports, a soup of combinational cells
/// (acyclic by construction: inputs are drawn from already-created nets),
/// and flops whose D/SI/SE are patched afterwards so they can close
/// feedback loops through the whole pool.
inline nl::Netlist random_gate_netlist(std::mt19937_64& rng) {
  auto rnd = [&rng](int lo, int hi) {
    return lo + static_cast<int>(rng() % static_cast<std::uint64_t>(hi - lo + 1));
  };
  nl::Netlist n("gatefuzz");
  std::vector<nl::NetId> pool;

  const int n_inputs = rnd(1, 3);
  for (int i = 0; i < n_inputs; ++i) {
    std::vector<nl::NetId> nets;
    const int w = rnd(1, 8);
    for (int b = 0; b < w; ++b) nets.push_back(n.new_net());
    pool.insert(pool.end(), nets.begin(), nets.end());
    n.add_input("in" + std::to_string(i), std::move(nets));
  }
  pool.push_back(n.const_net(false));
  pool.push_back(n.const_net(true));

  auto pick = [&]() { return pool[static_cast<std::size_t>(rnd(0, static_cast<int>(pool.size()) - 1))]; };

  // Flops first (patched below); their outputs seed the pool so the
  // combinational soup can consume state.
  std::vector<std::size_t> flop_cells;
  const int n_flops = rnd(0, 10);
  for (int f = 0; f < n_flops; ++f) {
    const bool scan = (rng() & 1) != 0;
    flop_cells.push_back(n.cells().size());
    const nl::NetId q = scan ? n.add_cell(nl::CellType::kSdff, {pick(), pick(), pick()},
                                          static_cast<int>(rng() & 1))
                             : n.add_cell(nl::CellType::kDff, {pick()}, static_cast<int>(rng() & 1));
    pool.push_back(q);
  }

  static constexpr nl::CellType kComb[] = {
      nl::CellType::kBuf,   nl::CellType::kInv,  nl::CellType::kAnd2,
      nl::CellType::kOr2,   nl::CellType::kNand2, nl::CellType::kNor2,
      nl::CellType::kXor2,  nl::CellType::kXnor2, nl::CellType::kMux2,
  };
  const int n_cells = rnd(10, 120);
  for (int i = 0; i < n_cells; ++i) {
    const nl::CellType t = kComb[static_cast<std::size_t>(rnd(0, 8))];
    std::vector<nl::NetId> ins;
    for (int k = 0; k < nl::cell_input_count(t); ++k) ins.push_back(pick());
    pool.push_back(n.add_cell(t, std::move(ins)));
  }

  // Close flop feedback through the full pool (including nets created
  // after the flop — sequential edges may point anywhere).
  for (const std::size_t ci : flop_cells)
    for (nl::NetId& in : n.cells_mut()[ci].inputs) in = pick();

  const int n_outs = rnd(1, 3);
  for (int o = 0; o < n_outs; ++o) {
    std::vector<nl::NetId> nets;
    const int w = rnd(1, 8);
    for (int b = 0; b < w; ++b) nets.push_back(pick());
    n.add_output("out" + std::to_string(o), std::move(nets));
  }
  return n;
}

inline LogicVector random_logic_vector(std::mt19937_64& rng, std::size_t width,
                                       bool allow_xz) {
  LogicVector v(width);
  for (std::size_t i = 0; i < width; ++i) {
    // Bias towards 0/1 so arithmetic survives; X/Z still exercises every
    // truth-table row over thousands of netlists.
    const auto r = rng() % 8;
    Logic b = logic_from_bool((r & 1) != 0);
    if (allow_xz && r == 6) b = Logic::X;
    if (allow_xz && r == 7) b = Logic::Z;
    v.set(i, b);
  }
  return v;
}

}  // namespace scflow
