// Shared random-netlist generators for the gate-level fuzz harnesses:
// test_fuzz_equivalence (table vs reference evaluator vs compiled
// backend), test_compiled_sim (independent-lane differential) and
// test_ppsfp (PPSFP-vs-event-driven campaign oracle) build their
// structural netlists and four-valued stimulus from the same generators
// so a seed means the same design everywhere.
#pragma once

#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "dtypes/logic.hpp"
#include "fault/campaign.hpp"
#include "fault/fault.hpp"
#include "netlist/netlist.hpp"

namespace scflow {

/// Random structural netlist: input ports, a soup of combinational cells
/// (acyclic by construction: inputs are drawn from already-created nets),
/// and flops whose D/SI/SE are patched afterwards so they can close
/// feedback loops through the whole pool.
inline nl::Netlist random_gate_netlist(std::mt19937_64& rng) {
  auto rnd = [&rng](int lo, int hi) {
    return lo + static_cast<int>(rng() % static_cast<std::uint64_t>(hi - lo + 1));
  };
  nl::Netlist n("gatefuzz");
  std::vector<nl::NetId> pool;

  const int n_inputs = rnd(1, 3);
  for (int i = 0; i < n_inputs; ++i) {
    std::vector<nl::NetId> nets;
    const int w = rnd(1, 8);
    for (int b = 0; b < w; ++b) nets.push_back(n.new_net());
    pool.insert(pool.end(), nets.begin(), nets.end());
    n.add_input("in" + std::to_string(i), std::move(nets));
  }
  pool.push_back(n.const_net(false));
  pool.push_back(n.const_net(true));

  auto pick = [&]() { return pool[static_cast<std::size_t>(rnd(0, static_cast<int>(pool.size()) - 1))]; };

  // Flops first (patched below); their outputs seed the pool so the
  // combinational soup can consume state.
  std::vector<std::size_t> flop_cells;
  const int n_flops = rnd(0, 10);
  for (int f = 0; f < n_flops; ++f) {
    const bool scan = (rng() & 1) != 0;
    flop_cells.push_back(n.cells().size());
    const nl::NetId q = scan ? n.add_cell(nl::CellType::kSdff, {pick(), pick(), pick()},
                                          static_cast<int>(rng() & 1))
                             : n.add_cell(nl::CellType::kDff, {pick()}, static_cast<int>(rng() & 1));
    pool.push_back(q);
  }

  static constexpr nl::CellType kComb[] = {
      nl::CellType::kBuf,   nl::CellType::kInv,  nl::CellType::kAnd2,
      nl::CellType::kOr2,   nl::CellType::kNand2, nl::CellType::kNor2,
      nl::CellType::kXor2,  nl::CellType::kXnor2, nl::CellType::kMux2,
  };
  const int n_cells = rnd(10, 120);
  for (int i = 0; i < n_cells; ++i) {
    const nl::CellType t = kComb[static_cast<std::size_t>(rnd(0, 8))];
    std::vector<nl::NetId> ins;
    for (int k = 0; k < nl::cell_input_count(t); ++k) ins.push_back(pick());
    pool.push_back(n.add_cell(t, std::move(ins)));
  }

  // Close flop feedback through the full pool (including nets created
  // after the flop — sequential edges may point anywhere).
  for (const std::size_t ci : flop_cells)
    for (nl::NetId& in : n.cells_mut()[ci].inputs) in = pick();

  const int n_outs = rnd(1, 3);
  for (int o = 0; o < n_outs; ++o) {
    std::vector<nl::NetId> nets;
    const int w = rnd(1, 8);
    for (int b = 0; b < w; ++b) nets.push_back(pick());
    n.add_output("out" + std::to_string(o), std::move(nets));
  }
  return n;
}

/// Random campaign shape for the engine-differential oracle: every knob
/// that changes WHAT the campaign computes is drawn from ranges small
/// enough to keep a seed fast but wide enough to cross the interesting
/// boundaries (scan on/off, cycle budgets shorter than the program,
/// single-cycle programs).
inline fault::CampaignOptions random_campaign_options(std::mt19937_64& rng) {
  fault::CampaignOptions opt;
  opt.seed = rng();
  opt.scan_patterns = 1 + static_cast<int>(rng() % 2);
  opt.capture_cycles = 1 + static_cast<int>(rng() % 3);
  opt.functional_cycles = 1 + static_cast<int>(rng() % 24);
  opt.use_scan = (rng() & 3) != 0;  // mostly on; off covers the tied path
  if ((rng() & 3) == 0) opt.cycle_budget = 1 + rng() % 8;
  opt.oscillation_threshold = 1 + static_cast<int>(rng() % 4);
  return opt;
}

/// Differential campaign oracle: simulates the same (netlist, fault list,
/// options) under the event-driven engine and under PPSFP, across
/// @p thread_counts, and checks every per-fault classification, detecting
/// pattern index (detect_cycle), observe port and cycle count for
/// bit-identity.  Returns an empty string on agreement, else a message
/// naming the first divergent fault — gtest-free so any harness can wrap
/// it in its own EXPECT.
inline std::string diff_campaign_engines(const nl::Netlist& n,
                                         const fault::CampaignOptions& base,
                                         const std::vector<unsigned>& thread_counts) {
  fault::CampaignOptions ref_opt = base;
  ref_opt.engine = fault::CampaignOptions::Engine::kEventDriven;
  ref_opt.threads = 1;
  const fault::CampaignResult ref = fault::run_campaign(n, ref_opt);
  for (const unsigned threads : thread_counts) {
    for (const bool ppsfp : {false, true}) {
      if (!ppsfp && threads == 1) continue;  // that is the reference itself
      fault::CampaignOptions opt = base;
      opt.engine = ppsfp ? fault::CampaignOptions::Engine::kPpsfp
                         : fault::CampaignOptions::Engine::kEventDriven;
      opt.threads = threads;
      const fault::CampaignResult got = fault::run_campaign(n, opt);
      std::ostringstream why;
      why << (ppsfp ? "ppsfp" : "event-driven") << " threads=" << threads << ": ";
      if (got.faults.size() != ref.faults.size()) {
        why << "simulated " << got.faults.size() << " != " << ref.faults.size();
        return why.str();
      }
      for (std::size_t i = 0; i < ref.faults.size(); ++i) {
        const fault::FaultResult& a = ref.faults[i];
        const fault::FaultResult& b = got.faults[i];
        if (a == b) continue;
        why << "fault " << i << " (" << fault::describe_fault(n, a.fault) << ") "
            << fault::fault_class_name(b.klass) << " cycle=" << b.detect_cycle
            << " port=" << b.detect_port << " cycles=" << b.cycles << " vs reference "
            << fault::fault_class_name(a.klass) << " cycle=" << a.detect_cycle
            << " port=" << a.detect_port << " cycles=" << a.cycles;
        return why.str();
      }
      if (got.detected != ref.detected || got.undetected != ref.undetected ||
          got.oscillating != ref.oscillating ||
          got.undetected_budget != ref.undetected_budget ||
          got.faulty_cycles_total != ref.faulty_cycles_total) {
        why << "aggregate mismatch";
        return why.str();
      }
    }
  }
  return {};
}

inline LogicVector random_logic_vector(std::mt19937_64& rng, std::size_t width,
                                       bool allow_xz) {
  LogicVector v(width);
  for (std::size_t i = 0; i < width; ++i) {
    // Bias towards 0/1 so arithmetic survives; X/Z still exercises every
    // truth-table row over thousands of netlists.
    const auto r = rng() % 8;
    Logic b = logic_from_bool((r & 1) != 0);
    if (allow_xz && r == 6) b = Logic::X;
    if (allow_xz && r == 7) b = Logic::Z;
    v.set(i, b);
  }
  return v;
}

}  // namespace scflow
