// Tests for the flow drivers: the refinement chain report and the Fig. 10
// synthesis/area flow — including the paper's headline ordering claims.
#include <gtest/gtest.h>

#include "flow/refinement_flow.hpp"
#include "flow/synthesis_flow.hpp"

namespace scflow::flow {
namespace {

TEST(RefinementFlowTest, ChainVerifiesWithQuantisationStepVisible) {
  const auto rep = run_refinement_flow(dsp::SrcMode::k44_1To48, 500);
  EXPECT_TRUE(rep.all_steps_verified());
  ASSERT_EQ(rep.steps.size(), 6u);
  // The continuous -> quantised step must show (small) differences...
  const auto& quant = rep.steps[1];
  EXPECT_EQ(quant.to, "C++ (quantised time)");
  EXPECT_GT(quant.mismatches, 0u);
  // ...and every other step must be exact.
  for (const auto& s : rep.steps)
    if (s.to != "C++ (quantised time)") EXPECT_TRUE(s.bit_accurate) << s.from << "->" << s.to;
  const std::string text = format_refinement_report(rep);
  EXPECT_NE(text.find("chain verified: yes"), std::string::npos);
}

TEST(SynthesisFlowTest, AllDesignsSynthesise) {
  const auto rows = figure10_area_rows();
  ASSERT_EQ(rows.size(), 5u);
  for (const auto& r : rows) {
    EXPECT_GT(r.area.combinational, 0.0) << r.name;
    EXPECT_GT(r.area.sequential, 0.0) << r.name;
    EXPECT_GT(r.flops, 100u) << r.name;
  }
  EXPECT_NEAR(rows[0].total_pct, 100.0, 1e-9);  // VHDL-Ref is the baseline
}

TEST(SynthesisFlowTest, Figure10ShapeHolds) {
  // The paper's Fig. 10 findings:
  //  * BEH unopt is the largest (paper: 127.5 % of the reference);
  //  * the optimised SystemC implementations beat the VHDL reference;
  //  * even unoptimised RTL beats the reference;
  //  * comb(BEH opt) ~ comb(RTL opt): behavioural synthesis reached the
  //    optimum allocation; the RTL savings come from registers.
  const auto rows = figure10_area_rows();
  const auto& ref = rows[0];
  const auto& beh_u = rows[1];
  const auto& beh_o = rows[2];
  const auto& rtl_u = rows[3];
  const auto& rtl_o = rows[4];

  EXPECT_GT(beh_u.total_pct, 100.0) << "BEH unopt should exceed the reference";
  EXPECT_LT(beh_o.total_pct, 100.0) << "BEH opt should beat the reference";
  EXPECT_LT(rtl_u.total_pct, 100.0) << "even RTL unopt should beat the reference";
  EXPECT_LT(rtl_o.total_pct, rtl_u.total_pct) << "RTL opt smallest";
  EXPECT_LT(rtl_o.total_pct, beh_o.total_pct);

  // Combinational area of BEH-opt and RTL-opt nearly identical (within a
  // few percent of the reference total).
  EXPECT_NEAR(beh_o.combinational_pct, rtl_o.combinational_pct, 6.0);
  // The RTL wins come from sequential area.
  EXPECT_GT(beh_o.sequential_pct, rtl_o.sequential_pct);
  EXPECT_GT(rtl_u.sequential_pct, rtl_o.sequential_pct);
  (void)ref;
}

TEST(SynthesisFlowTest, TableFormats) {
  const auto rows = figure10_area_rows();
  const std::string t = format_area_table(rows);
  EXPECT_NE(t.find("VHDL-Ref"), std::string::npos);
  EXPECT_NE(t.find("total %"), std::string::npos);
}

}  // namespace
}  // namespace scflow::flow
