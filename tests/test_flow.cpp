// Tests for the flow drivers: the refinement chain report and the Fig. 10
// synthesis/area flow — including the paper's headline ordering claims.
#include <gtest/gtest.h>

#include "flow/refinement_flow.hpp"
#include "flow/synthesis_flow.hpp"
#include "hls/src_beh.hpp"
#include "obs/json.hpp"
#include "rtl/src_design.hpp"

namespace scflow::flow {
namespace {

TEST(RefinementFlowTest, ChainVerifiesWithQuantisationStepVisible) {
  const auto rep = run_refinement_flow(dsp::SrcMode::k44_1To48, 500);
  EXPECT_TRUE(rep.all_steps_verified());
  ASSERT_EQ(rep.steps.size(), 6u);
  // The continuous -> quantised step must show (small) differences...
  const auto& quant = rep.steps[1];
  EXPECT_EQ(quant.to, "C++ (quantised time)");
  EXPECT_GT(quant.mismatches, 0u);
  // ...and every other step must be exact.
  for (const auto& s : rep.steps)
    if (s.to != "C++ (quantised time)") EXPECT_TRUE(s.bit_accurate) << s.from << "->" << s.to;
  const std::string text = format_refinement_report(rep);
  EXPECT_NE(text.find("chain verified: yes"), std::string::npos);
}

// The Fig. 8 performance ladder, cross-checked against the kernel
// mechanisms the paper blames for it: activation counts must rise from the
// kernel-free C++ level through the event-driven channel level to the
// clocked levels, which activate their processes every clock cycle.
TEST(RefinementFlowTest, ActivationCountsMatchFig8Ordering) {
  obs::Session session;
  run_refinement_flow(dsp::SrcMode::k44_1To48, 200, &session);
  const auto& reg = session.registry;

  const auto acts = [&](const char* slug) {
    return reg.counter(std::string("level.") + slug + ".activations");
  };
  // C++ < channel < behavioural; behavioural and RTL both activate once
  // per clock edge, so their activation counts coincide — the wall-clock
  // gap between them is context switches (threads vs methods), below.
  EXPECT_EQ(acts("cpp"), 0u);
  EXPECT_LT(acts("cpp"), acts("channel"));
  EXPECT_LT(acts("channel"), acts("beh_opt"));
  EXPECT_LE(acts("beh_opt"), acts("rtl_opt"));
  EXPECT_LT(acts("channel"), acts("rtl_opt"));

  const auto ctx = [&](const char* slug) {
    return reg.counter(std::string("level.") + slug + ".context_switches");
  };
  EXPECT_GT(ctx("beh_opt"), 10 * ctx("rtl_opt"))
      << "thread-based behavioural level must pay far more context switches "
         "than the method-based RTL level";

  const auto deltas = [&](const char* slug) {
    return reg.counter(std::string("level.") + slug + ".delta_cycles");
  };
  EXPECT_EQ(deltas("cpp"), 0u);
  EXPECT_LT(deltas("channel"), deltas("rtl_opt"));

  // Per-level keys the --json consumers rely on all exist.
  for (const char* slug : {"channel", "beh_opt", "rtl_opt"}) {
    for (const char* field : {"activations", "context_switches", "delta_cycles",
                              "method_invocations", "signal_updates"}) {
      EXPECT_TRUE(
          reg.has_counter(std::string("level.") + slug + "." + field))
          << slug << "." << field;
    }
  }
  // Per-process attribution made it into the registry.
  EXPECT_GT(reg.counter("process.channel.producer.drive.activations"), 0u);
  const std::string report = reg.report_json();
  EXPECT_NE(report.find("process.rtl_opt."), std::string::npos);
}

// The session trace must be structurally valid Chrome trace-event JSON
// (loadable in chrome://tracing / Perfetto) with one slice per flow step.
TEST(RefinementFlowTest, SessionEmitsValidTraceAndReport) {
  obs::Session session;
  const auto rep = run_refinement_flow(dsp::SrcMode::k44_1To48, 120, &session);
  EXPECT_TRUE(rep.all_steps_verified());

  std::string err;
  const std::string trace = session.trace.to_json();
  ASSERT_TRUE(obs::json_validate(trace, &err)) << err;
  EXPECT_NE(trace.find("\"traceEvents\""), std::string::npos);
  // 7 level runs + 6 verification steps, each a complete slice; plus the
  // per-level activation counter samples.
  EXPECT_GE(session.trace.event_count(), 13u);
  EXPECT_NE(trace.find("\"ph\":\"X\""), std::string::npos);

  const std::string report = session.registry.report_json();
  ASSERT_TRUE(obs::json_validate(report, &err)) << err;
  EXPECT_NE(report.find("scflow-obs-2"), std::string::npos);
  ASSERT_NE(session.registry.timer("level:rtl_opt"), nullptr);
  EXPECT_EQ(session.registry.timer("level:rtl_opt")->count, 1u);
  EXPECT_EQ(session.registry.counter("verify.steps"), 6u);
  EXPECT_GT(session.registry.counter("verify.outputs_compared"), 0u);
}

TEST(SynthesisFlowTest, AllDesignsSynthesise) {
  const auto rows = figure10_area_rows();
  ASSERT_EQ(rows.size(), 5u);
  for (const auto& r : rows) {
    EXPECT_GT(r.area.combinational, 0.0) << r.name;
    EXPECT_GT(r.area.sequential, 0.0) << r.name;
    EXPECT_GT(r.flops, 100u) << r.name;
  }
  EXPECT_NEAR(rows[0].total_pct, 100.0, 1e-9);  // VHDL-Ref is the baseline
}

TEST(SynthesisFlowTest, Figure10ShapeHolds) {
  // The paper's Fig. 10 findings:
  //  * BEH unopt is the largest (paper: 127.5 % of the reference);
  //  * the optimised SystemC implementations beat the VHDL reference;
  //  * even unoptimised RTL beats the reference;
  //  * comb(BEH opt) ~ comb(RTL opt): behavioural synthesis reached the
  //    optimum allocation; the RTL savings come from registers.
  const auto rows = figure10_area_rows();
  const auto& ref = rows[0];
  const auto& beh_u = rows[1];
  const auto& beh_o = rows[2];
  const auto& rtl_u = rows[3];
  const auto& rtl_o = rows[4];

  EXPECT_GT(beh_u.total_pct, 100.0) << "BEH unopt should exceed the reference";
  EXPECT_LT(beh_o.total_pct, 100.0) << "BEH opt should beat the reference";
  EXPECT_LT(rtl_u.total_pct, 100.0) << "even RTL unopt should beat the reference";
  EXPECT_LT(rtl_o.total_pct, rtl_u.total_pct) << "RTL opt smallest";
  EXPECT_LT(rtl_o.total_pct, beh_o.total_pct);

  // Combinational area of BEH-opt and RTL-opt nearly identical (within a
  // few percent of the reference total).
  EXPECT_NEAR(beh_o.combinational_pct, rtl_o.combinational_pct, 6.0);
  // The RTL wins come from sequential area.
  EXPECT_GT(beh_o.sequential_pct, rtl_o.sequential_pct);
  EXPECT_GT(rtl_u.sequential_pct, rtl_o.sequential_pct);
  (void)ref;
}

// The formal gates of the ISSUE's acceptance criteria: gate optimisation
// and scan insertion on the optimised SystemC implementations are proven
// equivalence-preserving by CEC, with stats landing under
// "fig10.<design>.cec.*".
TEST(SynthesisFlowTest, FormalCecGatesProveRtlOptRefinements) {
  obs::Registry reg;
  SynthesisOptions opts;
  opts.verify_cec = true;
  const rtl::Design d = rtl::build_src_design(rtl::rtl_opt_config());
  const nl::Netlist gates = synthesize_to_gates(d, nullptr, &reg, "fig10.rtl_opt", opts);
  EXPECT_GT(gates.cells().size(), 0u);
  EXPECT_EQ(reg.gauge("fig10.rtl_opt.cec.opt.equivalent"), 1.0);
  EXPECT_EQ(reg.gauge("fig10.rtl_opt.cec.scan.equivalent"), 1.0);
  EXPECT_GT(reg.counter("fig10.rtl_opt.cec.opt.compare_bits"), 0u);
  EXPECT_GT(reg.counter("fig10.rtl_opt.cec.scan.compare_bits"), 0u);
  ASSERT_NE(reg.timer("fig10.rtl_opt.cec.opt"), nullptr);
  ASSERT_NE(reg.timer("fig10.rtl_opt.cec.scan"), nullptr);
}

TEST(SynthesisFlowTest, FormalCecGatesProveBehOptRefinements) {
  obs::Registry reg;
  SynthesisOptions opts;
  opts.verify_cec = true;
  const rtl::Design d = hls::build_beh_src_design(hls::beh_opt_config(), nullptr);
  (void)synthesize_to_gates(d, nullptr, &reg, "fig10.beh_opt", opts);
  EXPECT_EQ(reg.gauge("fig10.beh_opt.cec.opt.equivalent"), 1.0);
  EXPECT_EQ(reg.gauge("fig10.beh_opt.cec.scan.equivalent"), 1.0);
}

TEST(SynthesisFlowTest, TableFormats) {
  const auto rows = figure10_area_rows();
  const std::string t = format_area_table(rows);
  EXPECT_NE(t.find("VHDL-Ref"), std::string::npos);
  EXPECT_NE(t.find("total %"), std::string::npos);
  // No campaigns ran: the fault table renders empty.
  EXPECT_TRUE(format_fault_table(rows).empty());
}

TEST(SynthesisFlowTest, PreScanTwinSharesFaultUniverseWithScanEndpoint) {
  nl::Netlist pre("");
  const nl::Netlist gates = synthesize_to_gates(
      rtl::build_src_design(rtl::rtl_opt_config()), nullptr, nullptr, "synth", {}, &pre);
  // The twin is the same netlist minus the scan conversion: identical cell
  // count, plain flops, no scan ports.
  EXPECT_EQ(pre.cells().size(), gates.cells().size());
  EXPECT_EQ(pre.find_input("scan_in"), nullptr);
  EXPECT_NE(gates.find_input("scan_in"), nullptr);
  for (const nl::Cell& c : pre.cells()) EXPECT_NE(c.type, nl::CellType::kSdff);

  // One fault list, valid on both variants: a small sampled campaign pair
  // runs end-to-end and the scan side must not be worse.
  FaultOptions fopt;
  fault::FaultListStats st;
  std::vector<fault::Fault> list = fault::enumerate_stuck_faults(pre, &st);
  EXPECT_EQ(st.raw - st.collapsed, list.size());
  list = fault::sample_faults(list, 12);
  fault::CampaignOptions copt;
  const auto with_scan = fault::run_campaign(gates, list, copt);
  const auto no_scan = fault::run_campaign(pre, list, copt);
  EXPECT_TRUE(with_scan.scan_used);
  EXPECT_FALSE(no_scan.scan_used);
  EXPECT_GE(with_scan.coverage_pct(), no_scan.coverage_pct());

  // And the row-level formatter shows the delta columns.
  AreaRow row;
  row.name = "RTL opt.";
  row.scan_coverage_pct = with_scan.coverage_pct();
  row.noscan_coverage_pct = no_scan.coverage_pct();
  row.fault_population = list.size();
  row.faults_simulated = list.size();
  const std::string t = format_fault_table({row});
  EXPECT_NE(t.find("scan %"), std::string::npos);
  EXPECT_NE(t.find("RTL opt."), std::string::npos);
}

}  // namespace
}  // namespace scflow::flow
