// Tests for the RTL IR, builder, interpreter and optimisation passes.
#include <gtest/gtest.h>

#include <random>

#include "dtypes/bit_int.hpp"
#include "rtl/builder.hpp"
#include "rtl/interpreter.hpp"
#include "rtl/ir.hpp"
#include "rtl/passes.hpp"

namespace scflow::rtl {
namespace {

TEST(RtlIr, CounterCountsAndWraps) {
  DesignBuilder b("counter");
  auto cnt = b.reg("cnt", 4);
  b.assign_always(cnt, b.add(cnt.q, b.c(4, 1)));
  b.output("q", cnt.q);
  Design d = b.finalise();

  Interpreter it(d);
  for (int i = 0; i < 20; ++i) {
    it.evaluate();
    EXPECT_EQ(it.output("q"), static_cast<std::uint64_t>(i % 16));
    it.step();
  }
}

TEST(RtlIr, EnableGatesRegister) {
  DesignBuilder b("en");
  auto en = b.input("en", 1);
  auto r = b.reg("r", 8);
  b.assign(r, en, b.add(r.q, b.c(8, 1)));
  b.output("q", r.q);
  Design d = b.finalise();

  Interpreter it(d);
  it.set_input("en", 0);
  it.step();
  it.step();
  EXPECT_EQ(it.output("q"), 0u);
  it.set_input("en", 1);
  it.step();
  it.evaluate();
  EXPECT_EQ(it.output("q"), 1u);
}

TEST(RtlIr, LastAssignmentWins) {
  DesignBuilder b("prio");
  auto sel = b.input("sel", 1);
  auto r = b.reg("r", 8);
  b.assign_always(r, b.c(8, 5));
  b.assign(r, sel, b.c(8, 9));  // later assignment overrides when sel
  b.output("q", r.q);
  Design d = b.finalise();

  Interpreter it(d);
  it.set_input("sel", 0);
  it.step();
  it.evaluate();
  EXPECT_EQ(it.output("q"), 5u);
  it.set_input("sel", 1);
  it.step();
  it.evaluate();
  EXPECT_EQ(it.output("q"), 9u);
}

TEST(RtlIr, MemoryWriteThenRead) {
  DesignBuilder b("mem");
  auto we = b.input("we", 1);
  auto addr = b.input("addr", 4);
  auto data = b.input("data", 8);
  const int m = b.memory("ram", 4, 8);
  b.ram_write(m, addr, data, we);
  b.output("rd", b.ram_read(m, addr));
  Design d = b.finalise();

  Interpreter it(d);
  it.set_input("we", 1);
  it.set_input("addr", 3);
  it.set_input("data", 0xAB);
  it.evaluate();
  EXPECT_EQ(it.output("rd"), 0u);  // async read sees pre-write contents
  it.step();
  it.set_input("we", 0);
  it.evaluate();
  EXPECT_EQ(it.output("rd"), 0xABu);
}

TEST(RtlIr, RomReadAndSymmetryFoldLogic) {
  DesignBuilder b("rom");
  auto addr = b.input("a", 3);
  const int r = b.rom("tbl", 3, 8, {10, 20, 30, 40, 50, 60, 70, 80});
  b.output("d", b.rom_read(r, addr));
  Design d = b.finalise();

  Interpreter it(d);
  for (int a = 0; a < 8; ++a) {
    it.set_input("a", static_cast<std::uint64_t>(a));
    it.evaluate();
    EXPECT_EQ(it.output("d"), static_cast<std::uint64_t>((a + 1) * 10));
  }
}

TEST(RtlIr, SignedOpsMatchReference) {
  DesignBuilder b("signed");
  auto a = b.input("a", 8);
  auto x = b.input("x", 12);
  b.output("mul", b.mul(a, x, 20));
  b.output("sra", b.sra(a, 3));
  b.output("lts", b.lt_s(b.sext(a, 12), x));
  Design d = b.finalise();

  Interpreter it(d);
  std::mt19937_64 rng(7);
  for (int i = 0; i < 2000; ++i) {
    const auto av = static_cast<std::int64_t>(rng());
    const auto xv = static_cast<std::int64_t>(rng());
    const std::int64_t as = scflow::wrap_to_width(av, 8, true);
    const std::int64_t xs = scflow::wrap_to_width(xv, 12, true);
    it.set_input("a", static_cast<std::uint64_t>(as));
    it.set_input("x", static_cast<std::uint64_t>(xs));
    it.evaluate();
    EXPECT_EQ(it.output("mul"),
              static_cast<std::uint64_t>(as * xs) & bit_mask(20));
    EXPECT_EQ(static_cast<std::int64_t>(sign_extend(it.output("sra"), 8)), as >> 3);
    EXPECT_EQ(it.output("lts"), as < xs ? 1u : 0u);
  }
}

TEST(RtlIr, ValidateCatchesUnsetRegister) {
  Design d("bad");
  d.add_register("r", 4);
  EXPECT_THROW(d.validate(), std::logic_error);
}

TEST(RtlIr, ValidateCatchesWidthMismatch) {
  Design d("bad");
  const int r = d.add_register("r", 4);
  const NodeId c = d.constant(8, 3);
  d.set_register_next(r, c);
  EXPECT_THROW(d.validate(), std::logic_error);
}

TEST(RtlIr, StatsCountLiveArithmetic) {
  DesignBuilder b("stats");
  auto a = b.input("a", 16);
  auto m = b.mul(a, a, 32);
  b.output("o", b.add(m, m));
  auto dead = b.mul(a, b.c(16, 3), 32);  // dead: never used
  (void)dead;
  Design d = b.finalise();
  const auto s = d.stats();
  EXPECT_EQ(s.multipliers, 1u);
  EXPECT_EQ(s.adders, 1u);
}

// --- passes ---

TEST(RtlPasses, ConstantFoldingCollapsesConstantCones) {
  DesignBuilder b("fold");
  auto a = b.input("a", 16);
  auto k = b.add(b.c(16, 3), b.c(16, 4));       // folds to 7
  b.output("o", b.add(a, b.mul(k, b.c(16, 2), 16)));  // a + 14
  Design d = b.finalise();

  PassStats st;
  Design opt = run_passes(d, PassOptions{}, &st);
  EXPECT_GT(st.folded, 0u);
  Interpreter it(opt);
  it.set_input("a", 100);
  it.evaluate();
  EXPECT_EQ(it.output("o"), 114u);
}

TEST(RtlPasses, CseMergesIdenticalExpressions) {
  DesignBuilder b("cse");
  auto a = b.input("a", 16);
  auto x = b.add(a, b.c(16, 1));
  auto y = b.add(a, b.c(16, 1));  // structurally identical
  b.output("o", b.xor_(x, y));    // folds to 0 after CSE + x^x
  Design d = b.finalise();

  Design opt = run_passes(d, PassOptions{});
  EXPECT_LT(opt.nodes().size(), d.nodes().size());
  Interpreter it(opt);
  it.set_input("a", 41);
  it.evaluate();
  EXPECT_EQ(it.output("o"), 0u);
}

TEST(RtlPasses, AddZeroIdentity) {
  DesignBuilder b("ident");
  auto a = b.input("a", 16);
  b.output("o", b.add(a, b.c(16, 0)));
  Design opt = run_passes(b.finalise(), PassOptions{});
  // Output should collapse to the input node directly.
  Interpreter it(opt);
  it.set_input("a", 1234);
  it.evaluate();
  EXPECT_EQ(it.output("o"), 1234u);
  std::size_t adders = 0;
  for (const auto& n : opt.nodes())
    if (n.op == Op::kAdd) ++adders;
  EXPECT_EQ(adders, 0u);
}

TEST(RtlPasses, RegisterMergeUnifiesDuplicates) {
  DesignBuilder b("dupregs");
  auto a = b.input("a", 8);
  auto r1 = b.reg("r1", 8);
  auto r2 = b.reg("r2", 8);  // identical duplicate
  b.assign_always(r1, a);
  b.assign_always(r2, a);
  b.output("o", b.add(r1.q, r2.q));
  Design d = b.finalise();

  PassOptions opts;
  opts.merge_registers = true;
  PassStats st;
  Design opt = run_passes(d, opts, &st);
  EXPECT_EQ(st.merged_registers, 1u);
  EXPECT_EQ(opt.registers().size(), 1u);

  Interpreter it(opt);
  it.set_input("a", 21);
  it.step();
  it.evaluate();
  EXPECT_EQ(it.output("o"), 42u);
}

TEST(RtlPasses, DeadRegisterSweepRemovesUnreadRegisters) {
  DesignBuilder b("deadreg");
  auto a = b.input("a", 8);
  auto used = b.reg("used", 8);
  auto dead = b.reg("dead", 8);      // feeds nothing
  auto self = b.reg("self", 8);      // feeds only itself
  b.assign_always(used, a);
  b.assign_always(dead, a);
  b.assign_always(self, b.add(self.q, b.c(8, 1)));
  b.output("o", used.q);
  Design d = b.finalise();

  PassOptions opts;
  opts.sweep_dead_registers = true;
  Design opt = run_passes(d, opts);
  EXPECT_EQ(opt.registers().size(), 1u);
  EXPECT_EQ(opt.registers()[0].name, "used");
}

TEST(RtlPasses, PassesPreserveSequentialBehaviour) {
  // A small accumulating FSM, run with and without passes on random input.
  DesignBuilder b("acc");
  auto in = b.input("in", 8);
  auto en = b.input("en", 1);
  auto acc = b.reg("acc", 16);
  auto cnt = b.reg("cnt", 4);
  b.assign(acc, en, b.add(acc.q, b.sext(in, 16)));
  b.assign_always(cnt, b.add(cnt.q, b.c(4, 1)));
  // Mix in folding/CSE fodder.
  auto noise = b.add(b.c(16, 5), b.c(16, 6));
  b.output("sum", b.add(acc.q, b.sub(noise, b.c(16, 11))));
  b.output("cnt", cnt.q);
  Design d = b.finalise();

  PassOptions opts;
  opts.merge_registers = true;
  opts.sweep_dead_registers = true;
  Design opt = run_passes(d, opts);

  Interpreter ref(d), fast(opt);
  std::mt19937_64 rng(99);
  for (int i = 0; i < 500; ++i) {
    const std::uint64_t iv = rng() & 0xff;
    const std::uint64_t ev = rng() & 1;
    ref.set_input("in", iv);
    ref.set_input("en", ev);
    fast.set_input("in", iv);
    fast.set_input("en", ev);
    ref.evaluate();
    fast.evaluate();
    ASSERT_EQ(ref.output("sum"), fast.output("sum")) << "cycle " << i;
    ASSERT_EQ(ref.output("cnt"), fast.output("cnt")) << "cycle " << i;
    ref.step();
    fast.step();
  }
}

TEST(RtlPasses, RomReadWithConstantAddressFolds) {
  DesignBuilder b("romfold");
  const int r = b.rom("tbl", 3, 8, {1, 2, 3, 4, 5, 6, 7, 8});
  b.output("o", b.rom_read(r, b.c(3, 5)));
  Design opt = run_passes(b.finalise(), PassOptions{});
  Interpreter it(opt);
  it.evaluate();
  EXPECT_EQ(it.output("o"), 6u);
  for (const auto& n : opt.nodes()) EXPECT_NE(n.op, Op::kRomRead);
}

}  // namespace
}  // namespace scflow::rtl
