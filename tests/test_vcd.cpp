// Tests for the VCD trace writer (the waveform-dump facility the paper's
// per-step revalidation workflow relies on).
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "dtypes/bit_int.hpp"
#include "kernel/clock.hpp"
#include "kernel/module.hpp"
#include "kernel/signal.hpp"
#include "kernel/simulation.hpp"
#include "kernel/vcd.hpp"

namespace minisc {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream f(path);
  std::stringstream ss;
  ss << f.rdbuf();
  return ss.str();
}

struct TempFile {
  std::string path;
  explicit TempFile(const char* name) : path(std::string("/tmp/scflow_") + name) {}
  ~TempFile() { std::remove(path.c_str()); }
};

TEST(VcdTraceTest, EmitsHeaderAndValueChanges) {
  TempFile tmp("vcd1.vcd");
  Simulation sim;
  Clock clk(sim, "clk", Time::ns(10));
  Signal<scflow::Int<8>> data(sim, nullptr, "data");
  {
    VcdTrace trace(sim, tmp.path);
    trace.add(clk.signal());
    trace.add(data, 8);

    class M : public Module {
     public:
      M(Simulation& sim, Clock& clk, Signal<scflow::Int<8>>& data, VcdTrace& trace)
          : Module(sim, "m") {
        method("sample", [&trace] { trace.sample(); }).sensitive(clk.signal().value_changed_event());
        thread("drv", [this, &data] {
          for (int i = 1; i <= 4; ++i) {
            wait(Time::ns(10));
            data.write(scflow::Int<8>(i * 3));
          }
        });
      }
    } m(sim, clk, data, trace);

    sim.run_until(Time::ns(100));
  }
  const std::string vcd = slurp(tmp.path);
  EXPECT_NE(vcd.find("$timescale 1ps $end"), std::string::npos);
  EXPECT_NE(vcd.find("$var wire 1"), std::string::npos);   // the clock
  EXPECT_NE(vcd.find("$var wire 8"), std::string::npos);   // the data bus
  EXPECT_NE(vcd.find("$enddefinitions"), std::string::npos);
  EXPECT_NE(vcd.find("#10000"), std::string::npos);        // first posedge
  EXPECT_NE(vcd.find("b00000011 "), std::string::npos);    // data = 3
}

TEST(VcdTraceTest, OnlyChangesAreDumped) {
  TempFile tmp("vcd2.vcd");
  Simulation sim;
  Clock clk(sim, "clk", Time::ns(10));
  Signal<bool> constant(sim, nullptr, "stuck", false);
  {
    VcdTrace trace(sim, tmp.path);
    trace.add(constant);
    class M : public Module {
     public:
      M(Simulation& sim, Clock& clk, VcdTrace& trace) : Module(sim, "m") {
        method("sample", [&trace] { trace.sample(); }).sensitive(clk.posedge_event());
      }
    } m(sim, clk, trace);
    sim.run_until(Time::ns(200));
  }
  const std::string vcd = slurp(tmp.path);
  // The constant signal appears exactly once (its initial dump).
  std::size_t count = 0;
  for (std::size_t pos = vcd.find("\n0"); pos != std::string::npos;
       pos = vcd.find("\n0", pos + 1))
    ++count;
  EXPECT_EQ(count, 1u);
}

}  // namespace
}  // namespace minisc
