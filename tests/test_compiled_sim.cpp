// The compiled bit-parallel gate backend, end to end: bytecode slot
// layout and flop-commit staging, the macro read-port fallback regime,
// bit-exactness against the event-driven interpreter on the synthesised
// SRC netlists (functional schedules and the fault campaign's stimulus,
// all five Fig. 10 designs), independent-lane semantics on random
// netlists, the batch runner's thread-count invariance on the compiled
// backend, and the CEC compiled pre-pass.
#include <gtest/gtest.h>

#include <random>

#include "dsp/stimulus.hpp"
#include "fault/campaign.hpp"
#include "flow/synthesis_flow.hpp"
#include "formal/cec.hpp"
#include "hdlsim/batch_runner.hpp"
#include "hdlsim/compile.hpp"
#include "hdlsim/compiled_sim.hpp"
#include "hdlsim/dut.hpp"
#include "hdlsim/gate_sim.hpp"
#include "hdlsim/src_gate_sim.hpp"
#include "hls/src_beh.hpp"
#include "netlist/netlist.hpp"
#include "netlist_fuzz.hpp"
#include "obs/registry.hpp"
#include "rtl/src_design.hpp"

namespace scflow::hdlsim {
namespace {

using dsp::SrcMode;
using P = dsp::SrcParams;

nl::Netlist synthesised_src(const char* which) {
  if (std::string(which) == "beh_opt")
    return flow::synthesize_to_gates(hls::build_beh_src_design(hls::beh_opt_config()));
  if (std::string(which) == "beh_unopt")
    return flow::synthesize_to_gates(hls::build_beh_src_design(hls::beh_unopt_config()));
  if (std::string(which) == "vhdl_ref")
    return flow::synthesize_to_gates(rtl::build_src_design(rtl::vhdl_ref_config()));
  if (std::string(which) == "rtl_unopt")
    return flow::synthesize_to_gates(rtl::build_src_design(rtl::rtl_unopt_config()));
  return flow::synthesize_to_gates(rtl::build_src_design(rtl::rtl_opt_config()));
}

// --- codegen invariants ----------------------------------------------------

TEST(CompiledProgram, SlotLayoutOnSynthesisedNetlist) {
  const nl::Netlist n = synthesised_src("rtl_opt");
  const CompiledProgram prog = compile_netlist(n);

  std::uint32_t flops = 0;
  for (const nl::Cell& c : n.cells())
    if (nl::cell_is_sequential(c.type)) ++flops;
  ASSERT_GT(flops, 0u);
  EXPECT_EQ(prog.flop_count, flops);
  EXPECT_EQ(prog.slot_count, static_cast<std::uint32_t>(n.net_count()) + flops);
  EXPECT_EQ(prog.flop_init.size(), flops);
  EXPECT_EQ(prog.ops.size(), prog.comb_op_count + flops);

  // Flop Q nets occupy [0,F) in sequential-cell order; every other net
  // lives at 2F or above; the mapping is a bijection onto its range.
  std::uint32_t fi = 0;
  std::vector<bool> taken(prog.slot_count, false);
  for (const nl::Cell& c : n.cells()) {
    if (!nl::cell_is_sequential(c.type)) continue;
    EXPECT_EQ(prog.slot_of_net[static_cast<std::size_t>(c.output)], fi) << "flop " << fi;
    ++fi;
  }
  for (std::int32_t net = 0; net < n.net_count(); ++net) {
    const std::uint32_t s = prog.slot_of_net[static_cast<std::size_t>(net)];
    ASSERT_LT(s, prog.slot_count);
    EXPECT_TRUE(s < prog.flop_count || s >= 2 * prog.flop_count) << "net " << net;
    EXPECT_FALSE(taken[s]) << "slot " << s << " double-booked";
    taken[s] = true;
  }

  // Flop-sample ops write exactly the next-state region [F,2F), in order.
  for (std::uint32_t f = 0; f < flops; ++f) {
    const CompiledOp& op = prog.ops[prog.comb_op_count + f];
    EXPECT_EQ(op.out(), prog.flop_count + f);
    EXPECT_TRUE(op.kind() == static_cast<std::uint8_t>(nl::CellType::kBuf) ||
                op.kind() == static_cast<std::uint8_t>(nl::CellType::kMux2));
  }

  // Every combinational op reads only slots that were already written
  // (committed flop state, ties, inputs, or an earlier op) — the
  // straight-line dependency order the executor relies on.
  std::vector<bool> written(prog.slot_count, false);
  for (std::uint32_t f = 0; f < flops; ++f) written[f] = true;
  for (const std::uint32_t s : prog.tie0_slots) written[s] = true;
  for (const std::uint32_t s : prog.tie1_slots) written[s] = true;
  for (const auto& slots : prog.input_slots)
    for (const std::uint32_t s : slots) written[s] = true;
  for (std::size_t i = 0; i < prog.comb_op_count; ++i) {
    const CompiledOp& op = prog.ops[i];
    if (op.kind() == kMacroReadOp) {
      const CompiledMacroPort& mp = prog.macro_ports[op.in0];
      for (const std::uint32_t s : mp.addr_slots) EXPECT_TRUE(written[s]) << "op " << i;
      for (const std::uint32_t s : mp.data_slots) written[s] = true;
      continue;
    }
    const auto t = static_cast<nl::CellType>(op.kind());
    const int n_in = nl::cell_input_count(t);
    if (n_in > 0) {
      EXPECT_TRUE(written[op.in0]) << "op " << i;
    }
    if (n_in > 1) {
      EXPECT_TRUE(written[op.in1]) << "op " << i;
    }
    if (n_in > 2) {
      EXPECT_TRUE(written[op.in2]) << "op " << i;
    }
    written[op.out()] = true;
  }
}

TEST(CompiledProgram, CombinationalCycleThrows) {
  nl::Netlist n("loop");
  const nl::NetId a = n.new_net();
  const nl::NetId b = n.add_cell(nl::CellType::kInv, {a});
  const nl::NetId c = n.add_cell(nl::CellType::kInv, {b});
  n.cells_mut()[0].inputs[0] = c;  // close the loop
  n.add_input("in", {a});          // unused; keeps validate() quiet
  n.add_output("out", {c});
  EXPECT_THROW((void)compile_netlist(n), std::logic_error);
}

// A flop chain q0 -> q1 -> ... -> q7 is the classic in-place-commit trap:
// committing flop i before sampling flop i+1 would let the new value race
// down the chain in one cycle.  The staged [F,2F) region must shift the
// pulse exactly one stage per step.
TEST(CompiledSimTest, FlopChainCommitsAreStaged) {
  nl::Netlist n("chain");
  const nl::NetId d0 = n.new_net();
  n.add_input("d", {d0});
  std::vector<nl::NetId> qs;
  nl::NetId prev = d0;
  for (int i = 0; i < 8; ++i) {
    prev = n.add_cell(nl::CellType::kDff, {prev});
    qs.push_back(prev);
  }
  n.add_output("q", {qs.back()});
  n.add_output("taps", qs);

  CompiledSim sim(n);
  GateSim ref(n);
  sim.set_input("d", 1);
  ref.set_input("d", 1);
  for (int cycle = 0; cycle < 12; ++cycle) {
    sim.step();
    ref.step();
    EXPECT_EQ(sim.output("taps"), ref.output("taps")) << "cycle " << cycle;
    // After k steps of a held-high input, exactly the low k taps are set.
    const std::uint64_t want = (cycle + 1) >= 8 ? 0xffu : ((1u << (cycle + 1)) - 1u);
    EXPECT_EQ(sim.output("taps"), want) << "cycle " << cycle;
    if (cycle == 3) {
      sim.set_input("d", 0);
      ref.set_input("d", 0);
      break;
    }
  }
  for (int cycle = 4; cycle < 14; ++cycle) {
    sim.step();
    ref.step();
    EXPECT_EQ(sim.output("taps"), ref.output("taps")) << "cycle " << cycle;
  }
}

// --- backend selection -----------------------------------------------------

TEST(MakeGateDut, SelectsBackendAndFallsBackToInterpreter) {
  const nl::Netlist n = synthesised_src("rtl_opt");
  GateSim::Options opt;

  auto compiled = make_gate_dut(n, opt, Backend::kCompiled);
  EXPECT_NE(dynamic_cast<CompiledDut*>(compiled.get()), nullptr);

  auto interpreted = make_gate_dut(n, opt, Backend::kInterpreted);
  EXPECT_NE(dynamic_cast<GateDut*>(interpreted.get()), nullptr);

  // The checking RAM model and the reference evaluator only exist in the
  // interpreter: requesting either overrides the compiled choice.
  GateSim::Options check_ram = opt;
  check_ram.check_ram = true;
  auto fallback = make_gate_dut(n, check_ram, Backend::kCompiled);
  EXPECT_NE(dynamic_cast<GateDut*>(fallback.get()), nullptr);

  GateSim::Options ref_eval = opt;
  ref_eval.use_reference_eval = true;
  auto fallback2 = make_gate_dut(n, ref_eval, Backend::kCompiled);
  EXPECT_NE(dynamic_cast<GateDut*>(fallback2.get()), nullptr);
}

TEST(CompiledSrcRun, MatchesInterpreterOnSrcSchedule) {
  const nl::Netlist gates = synthesised_src("rtl_opt");
  const auto inputs = dsp::make_noise_stimulus(60, 11);
  const auto ev = dsp::make_schedule(inputs, P::input_period_ps(SrcMode::k44_1To48), 60,
                                     P::output_period_ps(SrcMode::k44_1To48));

  const GateRunResult interp =
      run_src_netlist(gates, SrcMode::k44_1To48, ev, {}, 0, Backend::kInterpreted);
  const GateRunResult comp =
      run_src_netlist(gates, SrcMode::k44_1To48, ev, {}, 0, Backend::kCompiled);

  ASSERT_FALSE(interp.timed_out);
  ASSERT_FALSE(comp.timed_out);
  EXPECT_EQ(comp.cycles, interp.cycles);
  ASSERT_EQ(comp.outputs.size(), interp.outputs.size());
  for (std::size_t i = 0; i < interp.outputs.size(); ++i)
    EXPECT_EQ(comp.outputs[i], interp.outputs[i]) << "output " << i;
  EXPECT_GT(comp.counters.evaluations, 0u);
}

// check_ram requests the interpreter-only checking memory model: the
// compiled backend must transparently fall back so the violations report
// is identical to an interpreted run.
TEST(CompiledSrcRun, CheckRamFallsBackToInterpreter) {
  const nl::Netlist gates = synthesised_src("rtl_opt");
  const auto inputs = dsp::make_noise_stimulus(40, 12);
  const auto ev = dsp::make_schedule(inputs, P::input_period_ps(SrcMode::k44_1To48), 40,
                                     P::output_period_ps(SrcMode::k44_1To48));
  GateSim::Options opt;
  opt.check_ram = true;

  const GateRunResult interp =
      run_src_netlist(gates, SrcMode::k44_1To48, ev, opt, 0, Backend::kInterpreted);
  const GateRunResult comp =
      run_src_netlist(gates, SrcMode::k44_1To48, ev, opt, 0, Backend::kCompiled);
  EXPECT_EQ(comp.outputs, interp.outputs);
  EXPECT_EQ(comp.ram_violations.count, interp.ram_violations.count);
  // The fallback ran the event-driven engine: its queue counters are live.
  EXPECT_EQ(comp.counters.dirty_pushes, interp.counters.dirty_pushes);
}

TEST(CompiledBatch, BitIdenticalAcrossThreadCounts) {
  const nl::Netlist gates = synthesised_src("rtl_opt");
  std::vector<std::vector<dsp::SrcEvent>> schedules;
  for (int s = 0; s < 6; ++s) {
    const auto inputs = dsp::make_noise_stimulus(30, 100 + static_cast<unsigned>(s));
    schedules.push_back(dsp::make_schedule(inputs, P::input_period_ps(SrcMode::k44_1To48),
                                           30, P::output_period_ps(SrcMode::k44_1To48)));
  }
  const std::vector<GateRunResult> base = run_src_netlist_batch(
      gates, SrcMode::k44_1To48, schedules, {}, 1, nullptr, 0, Backend::kCompiled);
  // The single-lane compiled batch must agree with the interpreter...
  const std::vector<GateRunResult> interp =
      run_src_netlist_batch(gates, SrcMode::k44_1To48, schedules, {}, 1);
  ASSERT_EQ(base.size(), interp.size());
  for (std::size_t j = 0; j < base.size(); ++j)
    EXPECT_EQ(base[j].outputs, interp[j].outputs) << "job " << j;
  // ...and with itself for every lane count.
  for (const unsigned threads : {2u, 4u, 8u}) {
    const std::vector<GateRunResult> got = run_src_netlist_batch(
        gates, SrcMode::k44_1To48, schedules, {}, threads, nullptr, 0, Backend::kCompiled);
    ASSERT_EQ(got.size(), base.size());
    for (std::size_t j = 0; j < base.size(); ++j) {
      EXPECT_EQ(got[j].outputs, base[j].outputs) << threads << " lanes, job " << j;
      EXPECT_EQ(got[j].cycles, base[j].cycles) << threads << " lanes, job " << j;
    }
  }
}

// --- fault-campaign stimulus parity ----------------------------------------

// The campaign's reference backend rests on this: over the exact campaign
// stimulus (scan shifts included) the four-state compiled engine must
// reproduce the interpreter's output_sample() masks bit for bit, on every
// Fig. 10 design, X power-up included.
TEST(CompiledCampaignParity, AllFigureTenDesigns) {
  for (const char* which : {"vhdl_ref", "beh_unopt", "beh_opt", "rtl_unopt", "rtl_opt"}) {
    const nl::Netlist n = synthesised_src(which);
    fault::CampaignOptions copt;
    copt.max_faults = 1;
    copt.x_initial_flops = true;
    copt.functional_cycles = 24;
    const auto stimulus = fault::build_campaign_stimulus(n, copt);
    ASSERT_FALSE(stimulus.empty()) << which;

    GateSim::Options gopt;
    gopt.x_initial_flops = true;
    GateSim interp(n, gopt);
    CompiledSim::Options sopt;
    sopt.x_initial_flops = true;
    CompiledSim comp(n, sopt);

    std::vector<GateSim::PortRef> ins, outs;
    for (const nl::PortBits& p : n.inputs()) ins.push_back(&p);
    for (const nl::PortBits& p : n.outputs()) outs.push_back(&p);

    for (std::size_t c = 0; c < stimulus.size(); ++c) {
      for (std::size_t i = 0; i < ins.size(); ++i) {
        interp.set_input(ins[i], stimulus[c][i]);
        comp.set_input(ins[i], stimulus[c][i]);
      }
      interp.step();
      comp.step();
      for (const auto out : outs) {
        const GateSim::PortSample a = interp.output_sample(out);
        const GateSim::PortSample b = comp.output_sample(out);
        ASSERT_EQ(a.known, b.known)
            << which << " cycle " << c << " output " << out->name << " known mask";
        ASSERT_EQ(a.value & a.known, b.value & b.known)
            << which << " cycle " << c << " output " << out->name;
      }
    }
  }
}

// End-to-end: a campaign with the compiled reference backend classifies
// every fault exactly like the interpreted reference.
TEST(CompiledCampaignParity, CampaignResultsMatchInterpretedReference) {
  const nl::Netlist n = synthesised_src("rtl_opt");
  fault::CampaignOptions opt;
  opt.max_faults = 24;
  opt.functional_cycles = 16;
  opt.x_initial_flops = true;

  const fault::CampaignResult interp = fault::run_campaign(n, opt);
  opt.reference_backend = Backend::kCompiled;
  const fault::CampaignResult comp = fault::run_campaign(n, opt);

  ASSERT_EQ(comp.faults.size(), interp.faults.size());
  for (std::size_t i = 0; i < interp.faults.size(); ++i)
    EXPECT_TRUE(comp.faults[i] == interp.faults[i]) << "fault " << i;
  EXPECT_EQ(comp.detected, interp.detected);
  EXPECT_EQ(comp.oscillating, interp.oscillating);
}

// --- independent pattern lanes ---------------------------------------------

// 64 genuinely different stimuli per word: each sampled lane must agree
// with a scalar GateSim run driven with that lane's per-cycle values.
TEST(CompiledLanes, IndependentLanesMatchScalarRuns) {
  for (int seed = 0; seed < 20; ++seed) {
    std::mt19937_64 rng(0xC0DE0000u + static_cast<unsigned>(seed));
    const nl::Netlist n = random_gate_netlist(rng);

    CompiledSim comp(n);
    constexpr unsigned kProbeLanes[] = {0, 17, 63};
    std::vector<std::unique_ptr<GateSim>> refs;
    for (unsigned l = 0; l < 3; ++l) refs.push_back(std::make_unique<GateSim>(n));

    for (int cycle = 0; cycle < 8; ++cycle) {
      for (const nl::PortBits& in : n.inputs()) {
        const auto port = comp.input_port(in.name);
        const auto rp = refs[0]->input_port(in.name);
        std::vector<std::uint64_t> words(in.nets.size());
        for (auto& w : words) w = rng();
        for (std::size_t b = 0; b < in.nets.size(); ++b)
          comp.set_input_word(port, b, words[b]);
        for (unsigned l = 0; l < 3; ++l) {
          std::uint64_t v = 0;
          for (std::size_t b = 0; b < in.nets.size() && b < 64; ++b)
            v |= std::uint64_t{(words[b] >> kProbeLanes[l]) & 1u} << b;
          refs[l]->set_input(rp, v);
        }
      }
      comp.step();
      for (auto& r : refs) r->step();
      for (const nl::PortBits& out : n.outputs()) {
        const auto port = comp.output_port(out.name);
        for (unsigned l = 0; l < 3; ++l) {
          const GateSim::PortSample want = refs[l]->output_sample(&out);
          const GateSim::PortSample got = comp.output_sample(port, kProbeLanes[l]);
          ASSERT_EQ(got.known, want.known)
              << "seed " << seed << " cycle " << cycle << " lane " << kProbeLanes[l];
          ASSERT_EQ(got.value, want.value)
              << "seed " << seed << " cycle " << cycle << " lane " << kProbeLanes[l];
        }
      }
    }
  }
}

// Fully defined stimulus: the four-state engine must collapse to the
// two-state engine's words with an all-ones known mask.
TEST(CompiledLanes, FourStateMatchesTwoStateOnDefinedStimulus) {
  for (int seed = 0; seed < 10; ++seed) {
    std::mt19937_64 rng(0xBEEF0000u + static_cast<unsigned>(seed));
    const nl::Netlist n = random_gate_netlist(rng);

    CompiledSim two(n);
    CompiledSim::Options fopt;
    fopt.four_state = true;
    CompiledSim four(n, fopt);

    for (int cycle = 0; cycle < 6; ++cycle) {
      for (const nl::PortBits& in : n.inputs()) {
        const auto p2 = two.input_port(in.name);
        const auto p4 = four.input_port(in.name);
        for (std::size_t b = 0; b < in.nets.size(); ++b) {
          const std::uint64_t w = rng();
          two.set_input_word(p2, b, w);
          four.set_input_word(p4, b, w);
        }
      }
      two.step();
      four.step();
      for (const nl::PortBits& out : n.outputs()) {
        const auto p2 = two.output_port(out.name);
        const auto p4 = four.output_port(out.name);
        for (std::size_t b = 0; b < out.nets.size(); ++b) {
          ASSERT_EQ(four.output_known_word(p4, b), ~0ull) << "seed " << seed;
          ASSERT_EQ(four.output_word(p4, b), two.output_word(p2, b)) << "seed " << seed;
          ASSERT_EQ(two.output_known_word(p2, b), ~0ull);
        }
      }
    }
  }
}

// --- observability and error paths -----------------------------------------

TEST(CompiledSimTest, RecordsObsCounters) {
  const nl::Netlist n = synthesised_src("rtl_opt");
  CompiledSim sim(n);
  for (const nl::PortBits& p : n.inputs()) sim.set_input(p.name, 0);
  for (int i = 0; i < 5; ++i) sim.step();

  obs::Registry reg;
  sim.record_into(reg, "compiled.src");
  EXPECT_EQ(reg.counter("compiled.src.cycles"), 5u);
  EXPECT_GT(reg.counter("compiled.src.ops"), 0u);
  EXPECT_EQ(reg.counter("compiled.src.words"), reg.counter("compiled.src.ops"));
  EXPECT_EQ(sim.ops_executed(), reg.counter("compiled.src.ops"));
  EXPECT_EQ(sim.gate_evaluations(), sim.ops_executed());
}

TEST(CompiledSimTest, ErrorPaths) {
  nl::Netlist n("tiny");
  const nl::NetId a = n.new_net();
  n.add_input("a", {a});
  n.add_output("y", {n.add_cell(nl::CellType::kInv, {a})});
  nl::Netlist other = n;

  CompiledSim two(n);
  EXPECT_THROW(two.set_input_x("a"), std::invalid_argument);
  LogicVector xv(1);
  xv.set(0, Logic::X);
  EXPECT_THROW(two.set_input_logic("a", xv), std::invalid_argument);
  EXPECT_THROW((void)two.input_port("nope"), std::invalid_argument);
  EXPECT_THROW((void)two.output_port("a"), std::invalid_argument);

  // Four-state: X propagates, numeric output() refuses it, sample masks it.
  CompiledSim::Options fopt;
  fopt.four_state = true;
  CompiledSim four(n, fopt);
  four.set_input_x("a");
  four.settle();
  EXPECT_THROW((void)four.output("y"), std::runtime_error);
  EXPECT_EQ(four.output_sample(four.output_port("y")).known, 0u);
  four.set_input("a", 1);
  four.settle();
  EXPECT_EQ(four.output("y"), 0u);

  // Port handles from another netlist are rejected, not misread.
  CompiledSim foreign(other);
  EXPECT_THROW((void)two.set_input(foreign.input_port("a"), 1), std::invalid_argument);
}

// --- CEC pre-pass ----------------------------------------------------------

TEST(CecCompiledPresim, RefutesAndRecordsOnGateOptPair) {
  std::mt19937_64 rng(0x5eed01);
  const nl::Netlist n = random_gate_netlist(rng);
  // Identical flop shapes on both sides: random netlists carry unnamed
  // flops, which CEC pairs positionally only when the counts match.
  const nl::Netlist copy = n;

  // Equivalent pair: the pre-pass runs all rounds, finds nothing, and the
  // usual engine proves equivalence.
  formal::CecOptions opt;
  obs::Registry reg;
  opt.metric_prefix = "cec.test";
  const formal::CecResult eq = formal::check_equivalence(n, copy, &reg, opt);
  EXPECT_TRUE(eq.equivalent());
  EXPECT_EQ(eq.stats.presim_rounds, static_cast<std::size_t>(opt.sim_rounds));
  EXPECT_GT(eq.stats.presim_ops, 0u);
  EXPECT_EQ(reg.counter("cec.test.presim_rounds"), eq.stats.presim_rounds);
  EXPECT_EQ(reg.counter("cec.test.presim_ops"), eq.stats.presim_ops);

  // Broken pair: flip one cell; the pre-pass should refute within its
  // rounds (64 patterns each) and the counterexample must replay.
  nl::Netlist broken = n;
  bool flipped = false;
  for (nl::Cell& c : broken.cells_mut()) {
    if (c.type == nl::CellType::kAnd2) {
      c.type = nl::CellType::kOr2;
      flipped = true;
      break;
    }
    if (c.type == nl::CellType::kInv) {
      c.type = nl::CellType::kBuf;
      flipped = true;
      break;
    }
  }
  ASSERT_TRUE(flipped);
  const formal::CecResult ne = formal::check_equivalence(n, broken, nullptr, opt);
  if (ne.status == formal::CecStatus::kNotEquivalent && ne.stats.presim_rounds > 0 &&
      ne.stats.sat_calls == 0) {
    // Refuted by simulation (pre-pass or AIG): the cex must be concrete
    // and replay-confirmed through GateSim.
    ASSERT_TRUE(ne.cex.has_value());
    EXPECT_TRUE(ne.cex->replayed);
    EXPECT_TRUE(ne.cex->replay_confirmed);
  }
  // Whichever layer caught it, the verdict must not be "equivalent"
  // unless the flip happened to be behaviour-preserving on dead logic.
  if (ne.status == formal::CecStatus::kEquivalent) {
    const formal::CecResult confirm = formal::check_equivalence(n, broken);
    EXPECT_TRUE(confirm.equivalent());
  }

  // With the pre-pass disabled the stats stay zero and results agree.
  formal::CecOptions off = opt;
  off.compiled_presim = false;
  const formal::CecResult eq2 = formal::check_equivalence(n, copy, nullptr, off);
  EXPECT_TRUE(eq2.equivalent());
  EXPECT_EQ(eq2.stats.presim_rounds, 0u);
  EXPECT_EQ(eq2.stats.presim_ops, 0u);
}

}  // namespace
}  // namespace scflow::hdlsim
