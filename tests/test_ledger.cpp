// Run-telemetry tests: the log2-bucketed Histogram (quantiles, merge
// associativity, JSON round trip), cross-thread span parent-linking
// through the BatchRunner, the run ledger's JSONL round trip + diff
// semantics, and the thread-sweep determinism contract (bit-identical
// ledger projections for any campaign lane count, timestamps excluded).
#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <iterator>
#include <limits>
#include <set>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "fault/campaign.hpp"
#include "hdlsim/batch_runner.hpp"
#include "netlist/lower.hpp"
#include "netlist/netlist.hpp"
#include "netlist/opt.hpp"
#include "obs/histogram.hpp"
#include "obs/json.hpp"
#include "obs/ledger.hpp"
#include "obs/session.hpp"
#include "rtl/builder.hpp"

namespace scflow::obs {
namespace {

// --- Histogram -----------------------------------------------------------

TEST(Histogram, ExactStatsAndBucketPlacement) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.quantile(0.5), 0u);
  for (std::uint64_t v : {0ull, 1ull, 2ull, 3ull, 4ull, 1000ull}) h.record(v);
  EXPECT_EQ(h.count(), 6u);
  EXPECT_EQ(h.sum(), 1010u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 1000u);
  EXPECT_DOUBLE_EQ(h.mean(), 1010.0 / 6.0);
  // Bucket b holds [2^(b-1), 2^b): 0->b0, 1->b1, {2,3}->b2, 4->b3, 1000->b10.
  EXPECT_EQ(h.bucket(0), 1u);
  EXPECT_EQ(h.bucket(1), 1u);
  EXPECT_EQ(h.bucket(2), 2u);
  EXPECT_EQ(h.bucket(3), 1u);
  EXPECT_EQ(h.bucket(10), 1u);
  // Quantile endpoints are exact; interior quantiles stay within range.
  EXPECT_EQ(h.quantile(0.0), 0u);
  EXPECT_EQ(h.quantile(1.0), 1000u);
  EXPECT_LE(h.p50(), 1000u);
  EXPECT_GE(h.p99(), h.p50());
}

TEST(Histogram, HandlesFullUint64Range) {
  Histogram h;
  h.record(~0ULL);
  h.record(1ULL << 63);
  EXPECT_EQ(h.count(), 2u);
  EXPECT_EQ(h.max(), ~0ULL);
  EXPECT_EQ(h.bucket(64), 2u);  // both land in the top bucket [2^63, 2^64)
  EXPECT_EQ(h.quantile(1.0), ~0ULL);
}

TEST(Histogram, MergeIsAssociativeAndCommutative) {
  // Three shards with a deterministic pseudo-random spread (xorshift).
  std::uint64_t x = 0x9e3779b97f4a7c15ULL;
  auto next = [&x] {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    return x;
  };
  Histogram a, b, c;
  for (int i = 0; i < 300; ++i) a.record(next() % 100000);
  for (int i = 0; i < 200; ++i) b.record(next() % 1000);
  for (int i = 0; i < 100; ++i) c.record(next());

  Histogram ab_c = a;  // (a + b) + c
  ab_c.merge_from(b);
  ab_c.merge_from(c);
  Histogram bc = b;  // a + (b + c)
  bc.merge_from(c);
  Histogram a_bc = a;
  a_bc.merge_from(bc);
  EXPECT_EQ(ab_c, a_bc);

  Histogram ba = b;  // commutes
  ba.merge_from(a);
  Histogram ab = a;
  ab.merge_from(b);
  EXPECT_EQ(ab, ba);
  EXPECT_EQ(ab_c.count(), 600u);
}

TEST(Histogram, JsonRoundTripIsExact) {
  Histogram h;
  for (std::uint64_t v : {0ull, 7ull, 8ull, 900ull, ~0ULL}) h.record(v);
  const std::string json = h.to_json();
  std::string err;
  EXPECT_TRUE(json_validate(json, &err)) << err << "\n" << json;

  Histogram back;
  ASSERT_TRUE(Histogram::from_json(json, &back)) << json;
  EXPECT_EQ(h, back);
  EXPECT_EQ(back.to_json(), json);  // stable fixed point

  Histogram junk;
  EXPECT_FALSE(Histogram::from_json("{\"count\":2}", &junk));  // bucket total mismatch
  EXPECT_FALSE(Histogram::from_json("[1,2]", &junk));
}

// --- spans across BatchRunner threads ------------------------------------

TEST(Spans, ParentLinkSurvivesBatchThreadHandoff) {
  Session session;
  constexpr std::size_t kJobs = 12;
  hdlsim::BatchRunner runner(4);
  runner.run(kJobs, [](std::size_t, unsigned) {
    std::this_thread::sleep_for(std::chrono::microseconds(50));
  });

  // The caller reserves the parent id BEFORE the fan-out it describes and
  // appends the parent span itself; record_into links every job span to it.
  const std::uint64_t root = session.spans.reserve_id();
  const std::uint64_t t0 = session.trace.now_ns();
  session.spans.add({root, 0, "campaign", "test", t0 > 1000000 ? t0 - 1000000 : 0,
                     session.trace.now_ns(), 0});
  runner.record_into(session, "batch", root);

  ASSERT_EQ(session.spans.size(), kJobs + 1);
  std::set<std::uint64_t> ids;
  for (const Span& s : session.spans.spans()) {
    EXPECT_TRUE(ids.insert(s.id).second) << "duplicate span id " << s.id;
    if (s.id != root) {
      EXPECT_EQ(s.parent_id, root);
      EXPECT_LE(s.start_ns, s.end_ns);
    }
  }

  const std::string json = session.trace.to_json();
  std::string err;
  EXPECT_TRUE(json_validate(json, &err)) << err;
  // One complete slice per span + one Perfetto flow pair per parent link.
  auto count_of = [&json](const std::string& needle) {
    std::size_t n = 0;
    for (std::size_t at = json.find(needle); at != std::string::npos;
         at = json.find(needle, at + 1))
      ++n;
    return n;
  };
  EXPECT_EQ(count_of("\"ph\":\"s\""), kJobs);  // flow starts (at the parent)
  EXPECT_EQ(count_of("\"ph\":\"f\""), kJobs);  // flow ends (at each job)
  EXPECT_GE(count_of("\"ph\":\"X\""), kJobs + 1);

  // The histogram recorded one latency per job.
  ASSERT_NE(session.registry.histogram("batch.job_ns"), nullptr);
  EXPECT_EQ(session.registry.histogram("batch.job_ns")->count(), kJobs);
}

// --- ledger JSONL round trip + diff --------------------------------------

LedgerEntry make_entry(const char* phase, const char* design, std::uint64_t salt) {
  LedgerEntry e;
  e.phase = phase;
  e.design = design;
  e.input_hash = 0x1111000000000000ULL + salt;
  e.options_fingerprint = 0x2222000000000000ULL + salt;
  e.duration_ns = 123456 + salt;  // timing: excluded from diff gating
  e.add_counter("cells", 100 + salt);
  e.add_counter("setup_ns", 999 + salt);  // timing counter: also excluded
  e.add_gauge("coverage_pct", 87.5);
  Histogram h;
  for (std::uint64_t v = 0; v < 20; ++v) h.record(v * v + salt);
  e.add_histogram("fault_cycles", h);
  return e;
}

TEST(Ledger, JsonlRoundTripPreservesEverything) {
  Ledger ledger;
  ledger.meta = collect_run_metadata("test_ledger");
  ledger.append(make_entry("synth", "rtl_opt", 0));
  ledger.append(make_entry("fault", "rtl_opt.scan", 1));
  ledger.append(make_entry("fault", "rtl_opt.scan", 2));  // same key, 2nd occurrence

  const std::string path = ::testing::TempDir() + "ledger_roundtrip.jsonl";
  std::remove(path.c_str());
  ASSERT_TRUE(ledger.write(path));

  LoadedLedger back;
  std::string err;
  ASSERT_TRUE(load_ledger(path, &back, &err)) << err;
  EXPECT_EQ(back.meta.tool, "test_ledger");
  ASSERT_EQ(back.entries.size(), 3u);
  EXPECT_EQ(back.entries[0].phase, "synth");
  EXPECT_EQ(back.entries[0].input_hash, ledger.entries()[0].input_hash);
  EXPECT_EQ(back.entries[0].counter("cells"), 100u);
  ASSERT_EQ(back.entries[0].histograms.size(), 1u);
  EXPECT_EQ(back.entries[0].histograms[0].second, ledger.entries()[0].histograms[0].second);
  // The parsed entries serialize back to the identical lines.
  for (std::size_t i = 0; i < 3; ++i)
    EXPECT_EQ(back.entries[i].to_json(), ledger.entries()[i].to_json());
  std::remove(path.c_str());
}

TEST(Ledger, AppendSharesOneHeader) {
  const std::string path = ::testing::TempDir() + "ledger_append.jsonl";
  std::remove(path.c_str());
  Ledger first;
  first.meta = collect_run_metadata("tool_a");
  first.append(make_entry("flow.level", "cpp", 0));
  ASSERT_TRUE(first.write(path, /*append=*/true));  // empty file: header written
  Ledger second;
  second.meta = collect_run_metadata("tool_b");
  second.append(make_entry("synth", "rtl_opt", 0));
  ASSERT_TRUE(second.write(path, /*append=*/true));  // non-empty: header skipped

  std::ifstream in(path);
  std::string line;
  std::size_t lines = 0, headers = 0;
  while (std::getline(in, line)) {
    ++lines;
    if (line.find("\"schema\":\"scflow-ledger-1\"") != std::string::npos) ++headers;
  }
  EXPECT_EQ(lines, 3u);
  EXPECT_EQ(headers, 1u);

  LoadedLedger merged;
  std::string err;
  ASSERT_TRUE(load_ledger(path, &merged, &err)) << err;
  EXPECT_EQ(merged.meta.tool, "tool_a");  // first header wins
  ASSERT_EQ(merged.entries.size(), 2u);
  EXPECT_EQ(merged.entries[1].phase, "synth");
  std::remove(path.c_str());
}

TEST(Ledger, DiffIgnoresTimingButGatesOnCounters) {
  LoadedLedger a, b;
  a.entries.push_back(make_entry("synth", "rtl_opt", 0));
  b.entries.push_back(make_entry("synth", "rtl_opt", 0));
  // Timing drift only: still clean, reported informationally.
  b.entries[0].duration_ns += 999999;
  b.entries[0].counters[1].second = 1;  // "setup_ns"
  LedgerDiff d = diff_ledgers(a, b);
  EXPECT_TRUE(d.clean()) << format_diff(d);
  EXPECT_EQ(d.timing_only.size(), 2u);

  // A real counter delta gates.
  b.entries[0].counters[0].second = 101;  // "cells"
  d = diff_ledgers(a, b);
  EXPECT_FALSE(d.clean());
  ASSERT_EQ(d.deltas.size(), 1u);
  EXPECT_EQ(d.deltas[0].metric, "cells");
  EXPECT_EQ(d.deltas[0].entry, "synth/rtl_opt");
  EXPECT_NE(format_diff(d).find("cells"), std::string::npos);

  // Unmatched entries gate too.
  b.entries[0].counters[0].second = 100;
  b.entries.push_back(make_entry("fault", "extra", 0));
  d = diff_ledgers(a, b);
  EXPECT_FALSE(d.clean());
  ASSERT_EQ(d.only_b.size(), 1u);
  EXPECT_EQ(d.only_b[0], "fault/extra");
}

TEST(Ledger, FormattersRenderLoadedLedgers) {
  LoadedLedger led;
  led.meta = collect_run_metadata("fmt");
  led.entries.push_back(make_entry("synth", "rtl_opt", 0));
  led.entries.push_back(make_entry("fault", "rtl_opt.scan", 1));
  const std::string table = format_ledger_table(led);
  EXPECT_NE(table.find("synth"), std::string::npos);
  EXPECT_NE(table.find("rtl_opt"), std::string::npos);
  const std::string hists = format_ledger_histograms(led);
  EXPECT_NE(hists.find("fault_cycles"), std::string::npos);
  EXPECT_NE(hists.find("n=20"), std::string::npos);
}

TEST(Ledger, IsTimingMetricRule) {
  EXPECT_TRUE(is_timing_metric("duration_ns"));
  EXPECT_TRUE(is_timing_metric("job_ns"));
  EXPECT_TRUE(is_timing_metric("batch.job_ns"));
  EXPECT_FALSE(is_timing_metric("cells"));
  EXPECT_FALSE(is_timing_metric("ns_total"));
  EXPECT_FALSE(is_timing_metric("_ns" + std::string("x")));
}

// --- registry integration -------------------------------------------------

TEST(Registry, ReportCarriesHistogramsAndSchemaV2) {
  Registry r;
  r.record_value("lat_ns", 100);
  r.record_value("lat_ns", 200);
  r.set_gauge("bad", std::numeric_limits<double>::quiet_NaN());
  r.set_gauge("worse", std::numeric_limits<double>::infinity());
  const std::string json = r.report_json();
  std::string err;
  EXPECT_TRUE(json_validate(json, &err)) << err << "\n" << json;
  EXPECT_NE(json.find("\"schema\":\"scflow-obs-2\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"lat_ns\""), std::string::npos);
  // Non-finite gauges must not produce invalid JSON tokens like nan/inf.
  EXPECT_NE(json.find("\"bad\":null"), std::string::npos);
  EXPECT_NE(json.find("\"worse\":null"), std::string::npos);
}

TEST(Registry, MergePrefixesHistograms) {
  Registry a, b;
  b.record_value("job_ns", 5);
  b.record_value("job_ns", 50);
  a.merge_from(b, "sub");
  ASSERT_NE(a.histogram("sub.job_ns"), nullptr);
  EXPECT_EQ(a.histogram("sub.job_ns")->count(), 2u);
  EXPECT_EQ(a.histogram("job_ns"), nullptr);
}

// --- thread-sweep determinism of the fault campaign ledger ----------------

nl::Netlist scan_accumulator() {
  rtl::DesignBuilder b("swp");
  auto x = b.input("x", 8);
  auto y = b.input("y", 8);
  auto acc = b.reg("acc", 8, 3);
  b.assign_always(acc, b.add(acc.q, b.and_(x, y)));
  b.output("sum", b.add(x, y));
  b.output("acc", acc.q);
  nl::Netlist g = nl::optimize_gates(nl::lower_to_gates(b.finalise(), {}));
  nl::insert_scan_chain(g);
  return g;
}

TEST(Ledger, FaultCampaignLedgerIsBitIdenticalAcrossThreadCounts) {
  const nl::Netlist scan = scan_accumulator();
  std::string reference;
  for (unsigned threads : {1u, 2u, 4u, 8u}) {
    obs::Session session;
    fault::CampaignOptions opt;
    opt.max_faults = 24;
    opt.threads = threads;
    const fault::CampaignResult r = fault::run_campaign(scan, opt, &session);
    EXPECT_GT(r.detected, 0u);
    ASSERT_EQ(session.ledger.size(), 1u);
    // The strip-timing projection removes duration + "*_ns" metrics; what
    // remains (hashes, fingerprints, counters, coverage, the per-fault
    // cycle histogram) must not depend on the lane count.
    const std::string img = session.ledger.entries()[0].to_json(/*strip_timing=*/true);
    if (reference.empty()) {
      reference = img;
      EXPECT_NE(img.find("\"phase\":\"fault\""), std::string::npos) << img;
      EXPECT_NE(img.find("fault_cycles"), std::string::npos) << img;
    } else {
      EXPECT_EQ(img, reference) << "threads=" << threads;
    }
  }
}

// --- lenient parsing of damaged ledgers ----------------------------------
//
// A crashed run leaves a byte-truncated tail; bit rot flips characters
// mid-file.  Strict loads must fail with the line number; lenient loads
// (skip_malformed) must salvage every intact entry and report each
// damaged line so `scflow_report validate` can render the damage.

std::string write_three_entry_ledger(const std::string& path) {
  Ledger ledger;
  ledger.meta = collect_run_metadata("test_ledger");
  ledger.append(make_entry("synth", "a", 0));
  ledger.append(make_entry("fault", "b", 1));
  ledger.append(make_entry("cosim", "c", 2));
  std::remove(path.c_str());
  EXPECT_TRUE(ledger.write(path));
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in), {});
}

void write_raw(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

TEST(LedgerCorruption, ByteTruncatedTailIsSkippedWithLineNumber) {
  const std::string path = ::testing::TempDir() + "ledger_truncated.jsonl";
  const std::string text = write_three_entry_ledger(path);
  // Chop the file mid-way through the LAST entry's JSON.
  const std::size_t cut = text.rfind("\"phase\":\"cosim\"");
  ASSERT_NE(cut, std::string::npos);
  write_raw(path, text.substr(0, cut + 20));

  LoadedLedger strict;
  std::string err;
  EXPECT_FALSE(load_ledger(path, &strict, &err));
  EXPECT_NE(err.find("line 4"), std::string::npos) << err;

  LoadedLedger lenient;
  err.clear();
  ASSERT_TRUE(load_ledger(path, &lenient, &err, /*skip_malformed=*/true)) << err;
  EXPECT_EQ(lenient.entries.size(), 2u);  // intact entries salvaged
  ASSERT_EQ(lenient.malformed.size(), 1u);
  EXPECT_EQ(lenient.malformed[0].line_no, 4u);
  EXPECT_FALSE(lenient.malformed[0].error.empty());
  std::remove(path.c_str());
}

TEST(LedgerCorruption, BitFlippedMiddleLineIsSkippedOthersSurvive) {
  const std::string path = ::testing::TempDir() + "ledger_bitflip.jsonl";
  std::string text = write_three_entry_ledger(path);
  // Corrupt line 3 (the second entry): flip its opening brace.
  std::size_t pos = 0;
  for (int nl = 0; nl < 2; ++nl) pos = text.find('\n', pos) + 1;
  ASSERT_EQ(text[pos], '{');
  text[pos] = '[';
  write_raw(path, text);

  LoadedLedger lenient;
  std::string err;
  ASSERT_TRUE(load_ledger(path, &lenient, &err, /*skip_malformed=*/true)) << err;
  ASSERT_EQ(lenient.entries.size(), 2u);
  EXPECT_EQ(lenient.entries[0].phase, "synth");
  EXPECT_EQ(lenient.entries[1].phase, "cosim");  // the entry AFTER the damage
  ASSERT_EQ(lenient.malformed.size(), 1u);
  EXPECT_EQ(lenient.malformed[0].line_no, 3u);

  LoadedLedger strict;
  err.clear();
  EXPECT_FALSE(load_ledger(path, &strict, &err));
  EXPECT_NE(err.find("line 3"), std::string::npos) << err;
  std::remove(path.c_str());
}

TEST(LedgerCorruption, MissingHeaderReportedAtFileLevel) {
  const std::string path = ::testing::TempDir() + "ledger_noheader.jsonl";
  const std::string text = write_three_entry_ledger(path);
  write_raw(path, text.substr(text.find('\n') + 1));  // drop the header line

  LoadedLedger strict;
  std::string err;
  EXPECT_FALSE(load_ledger(path, &strict, &err));

  LoadedLedger lenient;
  err.clear();
  ASSERT_TRUE(load_ledger(path, &lenient, &err, /*skip_malformed=*/true)) << err;
  EXPECT_EQ(lenient.entries.size(), 3u);  // entries are intact
  ASSERT_EQ(lenient.malformed.size(), 1u);
  EXPECT_EQ(lenient.malformed[0].line_no, 0u);  // file-level problem
  EXPECT_NE(lenient.malformed[0].error.find("header"), std::string::npos);
  std::remove(path.c_str());
}

// --- exact uint64 JSON parsing (the hash fields need all 64 bits) ---------

TEST(JsonParse, PreservesFullUint64Precision) {
  JsonValue v;
  std::string err;
  ASSERT_TRUE(json_parse("{\"h\":18446744073709551615,\"d\":2.5}", &v, &err)) << err;
  const JsonValue* h = v.find("h");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->as_u64(0), ~0ULL);
  const JsonValue* d = v.find("d");
  ASSERT_NE(d, nullptr);
  EXPECT_DOUBLE_EQ(d->as_double(0.0), 2.5);
}

}  // namespace
}  // namespace scflow::obs
