// Tests for the arbitrary-rational-ratio SRC path: ratio planning (gcd
// decomposition into integer stages), the bit-exactness regression that
// pins the gcd-decomposed path to the golden model for the four paper
// pairs, and signal-quality sanity for staged ratios.
#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <vector>

#include "dsp/golden_src.hpp"
#include "dsp/rational_src.hpp"
#include "dsp/stimulus.hpp"

namespace scflow::dsp {
namespace {

using P = SrcParams;

struct ModePair {
  SrcMode mode;
  std::uint32_t fs_in;
  std::uint32_t fs_out;
};

constexpr ModePair kPaperPairs[] = {
    {SrcMode::k44_1To48, 44'100, 48'000},
    {SrcMode::k48To44_1, 48'000, 44'100},
    {SrcMode::k48To48, 48'000, 48'000},
    {SrcMode::k32To48, 32'000, 48'000},
};

TEST(RatePeriod, ReproducesSrcParamsConstants) {
  EXPECT_EQ(rate_period_ps(44'100), P::kPeriod44k1Ps);
  EXPECT_EQ(rate_period_ps(48'000), P::kPeriod48kPs);
  EXPECT_EQ(rate_period_ps(32'000), P::kPeriod32kPs);
}

TEST(RatioPlanTest, PaperPairsPlanDirectWithTableSeeds) {
  for (const auto& pair : kPaperPairs) {
    const RatioPlan plan = plan_ratio(pair.fs_in, pair.fs_out);
    EXPECT_TRUE(plan.direct()) << pair.fs_in << "->" << pair.fs_out;
    EXPECT_EQ(plan.core_fs_in_hz, pair.fs_in);
    EXPECT_EQ(plan.core_fs_out_hz, pair.fs_out);
    // The seed must be the legacy SrcMode table entry bit-for-bit (note
    // k48To44_1's 35665 is truncated, not round-to-nearest).
    EXPECT_EQ(plan.core_increment, P::nominal_increment(pair.mode));
  }
}

TEST(RatioPlanTest, GcdReduction) {
  const RatioPlan plan = plan_ratio(44'100, 48'000);
  EXPECT_EQ(plan.up, 160u);
  EXPECT_EQ(plan.down, 147u);
  const RatioPlan unity = plan_ratio(48'000, 48'000);
  EXPECT_EQ(unity.up, 1u);
  EXPECT_EQ(unity.down, 1u);
}

TEST(RatioPlanTest, ExactIntegerRatiosKeepCoreAtUnity) {
  const RatioPlan down6 = plan_ratio(192'000, 32'000);
  EXPECT_EQ(down6.undersample_total(), 6);
  EXPECT_EQ(down6.oversample_total(), 1);
  EXPECT_EQ(down6.core_fs_in_hz, down6.core_fs_out_hz);
  EXPECT_EQ(down6.core_increment, 32768);

  const RatioPlan up6 = plan_ratio(8'000, 48'000);
  EXPECT_EQ(up6.oversample_total(), 6);
  EXPECT_EQ(up6.undersample_total(), 1);
  EXPECT_EQ(up6.core_fs_in_hz, up6.core_fs_out_hz);
  EXPECT_EQ(up6.core_increment, 32768);
}

TEST(RatioPlanTest, PowerOfTwoStagingKeepsCoreRatioInBand) {
  // 8000 -> 44100: x4 oversampling leaves the core at 32000 -> 44100.
  const RatioPlan up = plan_ratio(8'000, 44'100);
  EXPECT_EQ(up.oversample_total(), 4);
  EXPECT_EQ(up.undersample_total(), 1);
  EXPECT_EQ(up.core_fs_in_hz, 32'000u);
  EXPECT_EQ(up.core_fs_out_hz, 44'100u);

  // 44100 -> 8000: /4 undersampling leaves the core at 44100 -> 32000.
  const RatioPlan down = plan_ratio(44'100, 8'000);
  EXPECT_EQ(down.oversample_total(), 1);
  EXPECT_EQ(down.undersample_total(), 4);
  EXPECT_EQ(down.core_fs_in_hz, 44'100u);
  EXPECT_EQ(down.core_fs_out_hz, 32'000u);

  // The invariant behind both rules, swept over a rate grid: the core
  // ratio stays inside (0.5, 2] so its increment is in the legal band.
  const std::uint32_t rates[] = {4'000,  8'000,  11'025, 16'000, 22'050,
                                 32'000, 44'100, 48'000, 96'000, 192'000,
                                 384'000, 768'000};
  for (std::uint32_t fs_in : rates) {
    for (std::uint32_t fs_out : rates) {
      const RatioPlan plan = plan_ratio(fs_in, fs_out);
      const double core_ratio = static_cast<double>(plan.core_fs_in_hz) /
                                static_cast<double>(plan.core_fs_out_hz);
      EXPECT_GT(core_ratio, 0.5) << fs_in << "->" << fs_out;
      EXPECT_LE(core_ratio, 2.0) << fs_in << "->" << fs_out;
      EXPECT_GE(plan.core_increment, P::kIncMin);
      EXPECT_LE(plan.core_increment, P::kIncMax);
      EXPECT_EQ(static_cast<std::uint64_t>(plan.fs_in_hz) * plan.oversample_total(),
                plan.core_fs_in_hz);
      EXPECT_EQ(static_cast<std::uint64_t>(plan.fs_out_hz) * plan.undersample_total(),
                plan.core_fs_out_hz);
    }
  }
}

TEST(RatioPlanTest, StageFactorsAreSmallOrPrime) {
  // 8000 -> 768000 is x96 = 8 * 8 * ... greedy largest-first <= 8.
  const RatioPlan plan = plan_ratio(8'000, 768'000);
  EXPECT_EQ(plan.oversample_total(), 96);
  for (int f : plan.oversample_stages) {
    EXPECT_GE(f, 2);
    EXPECT_LE(f, 8);
  }
  // A prime quotient beyond 8 becomes its own stage.
  const RatioPlan prime = plan_ratio(4'000, 44'000);
  EXPECT_EQ(prime.oversample_total(), 11);
  ASSERT_EQ(prime.oversample_stages.size(), 1u);
  EXPECT_EQ(prime.oversample_stages[0], 11);
}

TEST(RatioPlanTest, RejectsRatesOutsideSupportedRange) {
  EXPECT_THROW(plan_ratio(3'999, 48'000), std::invalid_argument);
  EXPECT_THROW(plan_ratio(48'000, 3'999), std::invalid_argument);
  EXPECT_THROW(plan_ratio(768'001, 48'000), std::invalid_argument);
  EXPECT_THROW(plan_ratio(48'000, 1'000'000), std::invalid_argument);
  EXPECT_NO_THROW(plan_ratio(4'000, 768'000));
}

// --- The bit-exactness regression (PR 9's satellite contract) ---------
//
// Configured for each of the four paper SrcMode pairs, the gcd-
// decomposed arbitrary-ratio path must reproduce AlgorithmicSrc sample-
// for-sample, on both time bases.  The pairs plan direct, so RationalSrc
// is the golden core driven by an internally synthesised canonical
// timeline — this pins that the timeline (and its tie-breaking) is
// exactly make_schedule's.

std::vector<StereoSample> run_golden_outputs(AlgorithmicSrc& src,
                                             const std::vector<SrcEvent>& events) {
  std::vector<StereoSample> out;
  for (const auto& e : events) {
    if (e.is_input) {
      src.push_input(e.t_ps, e.sample);
    } else {
      out.push_back(src.pull_output(e.t_ps));
    }
  }
  return out;
}

TEST(RationalSrcBitExact, MatchesGoldenModelOnAllPaperPairs) {
  constexpr std::size_t kInputs = 3'000;
  for (const auto& pair : kPaperPairs) {
    const auto inputs = make_noise_stimulus(kInputs, 0x5eed0000u + pair.fs_in);
    const std::size_t out_count =
        kInputs * pair.fs_out / pair.fs_in + 16;
    const auto schedule =
        make_schedule(inputs, rate_period_ps(pair.fs_in), out_count,
                      rate_period_ps(pair.fs_out));

    for (auto tb : {AlgorithmicSrc::TimeBase::kContinuousPs,
                    AlgorithmicSrc::TimeBase::kQuantizedCycles}) {
      AlgorithmicSrc golden(pair.mode, tb);
      const auto expected = run_golden_outputs(golden, schedule);

      RationalSrc rational(pair.fs_in, pair.fs_out, tb);
      ASSERT_TRUE(rational.plan().direct());
      std::vector<StereoSample> got;
      std::vector<StereoSample> chunk(rational.plan().max_outputs_per_input());
      for (const auto& s : inputs) {
        const std::size_t n = rational.push(s, chunk.data(), chunk.size());
        got.insert(got.end(), chunk.begin(), chunk.begin() + n);
      }

      // The streaming path can't see past the last input; compare the
      // common prefix and require it to be essentially the whole run.
      ASSERT_GE(got.size(), expected.size() - 32)
          << pair.fs_in << "->" << pair.fs_out;
      const std::size_t n = std::min(got.size(), expected.size());
      for (std::size_t i = 0; i < n; ++i) {
        ASSERT_EQ(got[i], expected[i])
            << pair.fs_in << "->" << pair.fs_out << " time base "
            << static_cast<int>(tb) << " output " << i;
      }
    }
  }
}

// --- Staged-path behaviour -------------------------------------------

TEST(RationalSrcStaged, OutputCountTracksRatio) {
  struct Case {
    std::uint32_t fs_in, fs_out;
  } cases[] = {
      {8'000, 48'000},  // x6 oversample, core at unity
      {48'000, 8'000},  // /6 undersample, core at unity
      {8'000, 44'100},  // x4 oversample + fractional core
      {44'100, 8'000},  // fractional core + /4 undersample
      {22'050, 48'000}, // pure fractional (direct)
  };
  constexpr std::size_t kInputs = 4'000;
  for (const auto& c : cases) {
    RationalSrc src(c.fs_in, c.fs_out, RationalSrc::TimeBase::kContinuousPs);
    const auto inputs = make_noise_stimulus(kInputs, 42);
    std::vector<StereoSample> chunk(src.plan().max_outputs_per_input() + 8);
    std::uint64_t total = 0;
    for (const auto& s : inputs) {
      const std::size_t n = src.push(s, chunk.data(), chunk.size());
      // Per-input burst bound — what the service sizes its rings by.
      EXPECT_LE(n, src.plan().max_outputs_per_input());
      total += n;
    }
    const double expected = static_cast<double>(kInputs) *
                            static_cast<double>(c.fs_out) /
                            static_cast<double>(c.fs_in);
    EXPECT_NEAR(static_cast<double>(total), expected, expected * 0.01 + 16)
        << c.fs_in << "->" << c.fs_out;
    EXPECT_EQ(src.inputs_consumed(), kInputs);
    EXPECT_EQ(src.outputs_produced(), total);
  }
}

double staged_tone_snr(std::uint32_t fs_in, std::uint32_t fs_out, double tone_hz) {
  RationalSrc src(fs_in, fs_out, RationalSrc::TimeBase::kContinuousPs);
  const std::size_t count = fs_in / 4;  // a quarter second of audio
  const auto inputs = make_sine_stimulus(count, tone_hz, fs_in, 0.5);
  std::vector<StereoSample> chunk(src.plan().max_outputs_per_input() + 8);
  std::vector<std::int16_t> left;
  for (const auto& s : inputs) {
    const std::size_t n = src.push(s, chunk.data(), chunk.size());
    for (std::size_t k = 0; k < n; ++k) left.push_back(chunk[k].left);
  }
  // Drop the startup transient (filter fills + rate-tracker lock).
  const std::size_t skip = std::min(left.size() / 4, std::size_t{2'000});
  left.erase(left.begin(), left.begin() + static_cast<std::ptrdiff_t>(skip));
  return tone_snr_db(left, tone_hz, fs_out);
}

TEST(RationalSrcStaged, ConvertsAudioNotNoise) {
  // Loose SNR floors: this is the "actually converts audio" sanity
  // check, not a bit-accuracy bar (that's the golden-model test above).
  EXPECT_GT(staged_tone_snr(8'000, 48'000, 1'000.0), 30.0);
  EXPECT_GT(staged_tone_snr(48'000, 8'000, 1'000.0), 30.0);
  EXPECT_GT(staged_tone_snr(8'000, 44'100, 997.0), 30.0);
  EXPECT_GT(staged_tone_snr(44'100, 8'000, 997.0), 30.0);
}

TEST(RationalSrcStaged, UndersizedCallerBufferCarriesNotDrops) {
  // A caller buffer smaller than the worst-case burst forces the
  // internal carry path; the stream must stay identical, just delayed.
  // 44100 -> 48000 averages ~1.09 outputs per input, so cap=2 drains
  // the carry over time while still truncating individual bursts.
  RationalSrc wide_src(44'100, 48'000, RationalSrc::TimeBase::kContinuousPs);
  RationalSrc narrow_src(44'100, 48'000, RationalSrc::TimeBase::kContinuousPs);
  const auto inputs = make_noise_stimulus(2'000, 7);
  std::vector<StereoSample> wide(wide_src.plan().max_outputs_per_input());
  std::vector<StereoSample> got_wide;
  std::vector<StereoSample> got_narrow;
  for (const auto& s : inputs) {
    const std::size_t n = wide_src.push(s, wide.data(), wide.size());
    got_wide.insert(got_wide.end(), wide.begin(), wide.begin() + n);
    StereoSample two[2];
    const std::size_t m = narrow_src.push(s, two, 2);
    ASSERT_LE(m, 2u);
    got_narrow.insert(got_narrow.end(), two, two + m);
  }
  ASSERT_LE(got_narrow.size(), got_wide.size());
  // Whatever is still carried is strictly less than one worst-case burst.
  EXPECT_LE(got_wide.size() - got_narrow.size(),
            wide_src.plan().max_outputs_per_input());
  EXPECT_EQ(narrow_src.outputs_produced(), wide_src.outputs_produced());
  for (std::size_t i = 0; i < got_narrow.size(); ++i) {
    ASSERT_EQ(got_narrow[i], got_wide[i]) << "carry path diverged at " << i;
  }
}

}  // namespace
}  // namespace scflow::dsp
