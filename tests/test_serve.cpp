// Tests for the streaming SRC service: session lifecycle and stale-id
// safety, watermark backpressure (conservation laws, no silent drops),
// round-robin fairness with a bounded starvation streak across >1000
// sessions, thread-count bit-identity of every session's output stream,
// the work-quantum bound, concurrent client push/pull against a stepping
// service (the TSan target), and deterministic obs/ledger recording.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <iterator>
#include <thread>
#include <tuple>
#include <vector>

#include "dsp/stimulus.hpp"
#include "obs/session.hpp"
#include "serve/src_service.hpp"

namespace scflow::serve {
namespace {

using dsp::StereoSample;

constexpr std::uint32_t kRatioTable[][2] = {
    {44'100, 48'000}, {48'000, 44'100}, {48'000, 48'000}, {32'000, 48'000},
    {8'000, 48'000},  {48'000, 8'000},  {22'050, 48'000}, {44'100, 8'000},
};

// Drives one session to completion: pushes the whole stimulus through
// the service (stepping whenever the ring fills), draining outputs into
// @p sink, then converts the tail.
void pump_session(SrcService& service, SessionId id,
                  const std::vector<StereoSample>& stimulus,
                  std::vector<StereoSample>* sink = nullptr) {
  std::vector<StereoSample> out(256);
  std::size_t fed = 0;
  while (fed < stimulus.size()) {
    fed += service.push(id, stimulus.data() + fed, stimulus.size() - fed);
    service.step();
    std::size_t got;
    while ((got = service.pull(id, out.data(), out.size())) > 0) {
      if (sink != nullptr) sink->insert(sink->end(), out.begin(), out.begin() + got);
    }
  }
  // Tail drain: keep alternating pull and step until neither makes
  // progress (a full output ring gates the scheduler, so pull first).
  bool progress = true;
  while (progress) {
    progress = false;
    std::size_t got;
    while ((got = service.pull(id, out.data(), out.size())) > 0) {
      progress = true;
      if (sink != nullptr) sink->insert(sink->end(), out.begin(), out.begin() + got);
    }
    if (service.step() > 0) progress = true;
  }
}

TEST(ServeLifecycle, OpenPushPullClose) {
  SrcService service;
  const SessionId id = service.open({44'100, 48'000});
  ASSERT_TRUE(id.valid());
  EXPECT_EQ(service.session_count(), 1u);

  const auto stimulus = dsp::make_noise_stimulus(2'000, 1);
  std::vector<StereoSample> sink;
  pump_session(service, id, stimulus, &sink);

  const SessionStats* stats = service.stats(id);
  ASSERT_NE(stats, nullptr);
  EXPECT_EQ(stats->accepted, stimulus.size());
  EXPECT_EQ(stats->converted_in, stimulus.size());
  EXPECT_EQ(stats->produced, stats->pulled);  // fully drained
  EXPECT_EQ(sink.size(), stats->pulled);
  // ~48/44.1 outputs per input.
  EXPECT_NEAR(static_cast<double>(sink.size()),
              2'000.0 * 48'000.0 / 44'100.0, 32.0);

  EXPECT_TRUE(service.close(id));
  EXPECT_EQ(service.session_count(), 0u);
  EXPECT_FALSE(service.close(id)) << "double close must fail";
  EXPECT_EQ(service.push(id, stimulus.data(), 1), 0u) << "push after close";
}

TEST(ServeLifecycle, ReopenBumpsGenerationAndInvalidatesStaleIds) {
  ServiceOptions opt;
  opt.max_sessions = 1;
  SrcService service(opt);
  const SessionId first = service.open({48'000, 48'000});
  ASSERT_TRUE(first.valid());
  EXPECT_FALSE(service.open({48'000, 48'000}).valid()) << "capacity is 1";

  ASSERT_TRUE(service.close(first));
  service.step();  // reclaim happens at the step boundary
  const SessionId second = service.open({48'000, 44'100});
  ASSERT_TRUE(second.valid());
  EXPECT_EQ(second.slot, first.slot) << "slot is reused";
  EXPECT_NE(second.generation, first.generation);

  // The stale id must not alias the new tenant.
  EXPECT_EQ(service.stats(first), nullptr);
  StereoSample s{100, -100};
  EXPECT_EQ(service.push(first, &s, 1), 0u);
  EXPECT_NE(service.stats(second), nullptr);
}

TEST(ServeLifecycle, OpenRejectsUnsupportedRates) {
  SrcService service;
  EXPECT_THROW(service.open({2'000, 48'000}), std::invalid_argument);
  EXPECT_THROW(service.open({48'000, 1'000'000}), std::invalid_argument);
  EXPECT_EQ(service.session_count(), 0u) << "failed opens must not leak slots";
  EXPECT_TRUE(service.open({48'000, 48'000}).valid());
}

TEST(ServeBackpressure, ConservationUnderBurstyArrivalsWithSlowConsumer) {
  ServiceOptions opt;
  opt.input_ring = 64;
  opt.output_ring = 64;
  opt.work_quantum = 32;
  SrcService service(opt);
  const SessionId id = service.open({44'100, 48'000});
  ASSERT_TRUE(id.valid());

  // Seeded bursty arrivals, consumer pulling only every 4th burst.
  const auto stimulus = dsp::make_noise_stimulus(4'096, 99);
  std::vector<StereoSample> out(48);
  std::uint64_t offered = 0;
  std::uint64_t pulled = 0;
  std::size_t cursor = 0;
  std::uint64_t burst_no = 0;
  while (cursor < stimulus.size()) {
    const std::size_t burst = std::min<std::size_t>(
        13 + (burst_no * 7) % 50, stimulus.size() - cursor);
    const std::size_t accepted = service.push(id, stimulus.data() + cursor, burst);
    offered += burst;
    cursor += accepted;  // unaccepted samples are re-offered next round
    service.step();
    if (++burst_no % 4 == 0) {
      pulled += service.pull(id, out.data(), out.size());
    }
  }
  const SessionStats* stats = service.stats(id);
  ASSERT_NE(stats, nullptr);
  // Backpressure actually engaged (the rings are tiny) ...
  EXPECT_GT(stats->push_rejected, 0u);
  // ... and was reported, not silently dropped: offered splits exactly
  // into accepted + rejected, accepted into converted + still-queued,
  // produced into pulled + still-buffered.
  EXPECT_EQ(stats->accepted + stats->push_rejected, offered);
  EXPECT_EQ(stats->accepted, stimulus.size());
  EXPECT_EQ(stats->converted_in + (opt.input_ring - service.in_free(id)),
            stats->accepted);
  EXPECT_EQ(stats->pulled + service.out_available(id), stats->produced);
  EXPECT_EQ(stats->pulled, pulled);

  // Drain the tail: every accepted sample must come out converted.
  std::vector<StereoSample> sink;
  pump_session(service, id, {}, &sink);
  EXPECT_EQ(service.stats(id)->converted_in, stimulus.size());
  EXPECT_EQ(service.stats(id)->pulled, service.stats(id)->produced);
}

TEST(ServeFairness, StarvationStreakBoundedAcrossThousandSessions) {
  constexpr std::size_t kSessions = 1'200;
  constexpr std::size_t kCap = 64;
  ServiceOptions opt;
  opt.threads = 4;
  opt.max_sessions = kSessions;
  opt.max_sessions_per_step = kCap;
  opt.input_ring = 256;
  opt.output_ring = 512;
  opt.work_quantum = 64;
  SrcService service(opt);

  std::vector<SessionId> ids;
  ids.reserve(kSessions);
  for (std::size_t i = 0; i < kSessions; ++i) {
    const auto& ratio = kRatioTable[i % 4];  // cheap direct ratios
    const SessionId id = service.open({ratio[0], ratio[1]});
    ASSERT_TRUE(id.valid());
    ids.push_back(id);
  }
  const auto stimulus = dsp::make_noise_stimulus(192, 5);
  for (const SessionId id : ids) {
    ASSERT_EQ(service.push(id, stimulus.data(), stimulus.size()), stimulus.size());
  }

  // All sessions are ready and only kCap run per step: starvation is
  // expected — but bounded by the rotation: ceil(N / cap) steps.
  std::vector<StereoSample> out(256);
  for (int round = 0; round < 256; ++round) {
    if (service.step() == 0) break;
    for (const SessionId id : ids) {
      while (service.pull(id, out.data(), out.size()) > 0) {
      }
    }
  }
  EXPECT_GT(service.starve_streak_max(), 0u) << "the counter must engage";
  const std::uint32_t bound =
      static_cast<std::uint32_t>((kSessions + kCap - 1) / kCap) + 1;
  EXPECT_LE(service.starve_streak_max(), bound);
  for (const SessionId id : ids) {
    const SessionStats* stats = service.stats(id);
    ASSERT_NE(stats, nullptr);
    EXPECT_EQ(stats->converted_in, stimulus.size());
    EXPECT_LE(stats->starve_streak_max, bound);
  }
}

// Runs a deterministic multi-ratio workload at the given lane count and
// returns every session's (ratio, output hash, produced count).
std::vector<std::tuple<std::uint32_t, std::uint32_t, std::uint64_t, std::uint64_t>>
run_identity_workload(unsigned threads, std::size_t sessions_n, std::size_t samples_n,
                      std::string* ledger_image = nullptr) {
  ServiceOptions opt;
  opt.threads = threads;
  opt.max_sessions = sessions_n;
  opt.input_ring = 256;
  opt.output_ring = 1'024;
  opt.work_quantum = 128;
  SrcService service(opt);

  std::vector<SessionId> ids;
  std::vector<std::vector<StereoSample>> stimuli;
  for (std::size_t i = 0; i < sessions_n; ++i) {
    const auto& ratio = kRatioTable[i % std::size(kRatioTable)];
    ids.push_back(service.open({ratio[0], ratio[1]}));
    EXPECT_TRUE(ids.back().valid());
    stimuli.push_back(dsp::make_noise_stimulus(samples_n, 0xabc000 + i));
  }

  // Identical push/step/pull interleaving for every thread count.
  std::vector<std::size_t> fed(sessions_n, 0);
  std::vector<StereoSample> out(512);
  bool work_left = true;
  while (work_left) {
    work_left = false;
    for (std::size_t i = 0; i < sessions_n; ++i) {
      if (fed[i] < samples_n) {
        fed[i] += service.push(ids[i], stimuli[i].data() + fed[i], samples_n - fed[i]);
        if (fed[i] < samples_n) work_left = true;
      }
    }
    if (service.step() > 0) work_left = true;
    for (std::size_t i = 0; i < sessions_n; ++i) {
      while (service.pull(ids[i], out.data(), out.size()) > 0) {
      }
    }
  }

  std::vector<std::tuple<std::uint32_t, std::uint32_t, std::uint64_t, std::uint64_t>> result;
  for (std::size_t i = 0; i < sessions_n; ++i) {
    const SessionStats* stats = service.stats(ids[i]);
    EXPECT_NE(stats, nullptr);
    EXPECT_EQ(stats->converted_in, samples_n);
    const auto& ratio = kRatioTable[i % std::size(kRatioTable)];
    result.emplace_back(ratio[0], ratio[1], stats->output_hash, stats->produced);
  }
  if (ledger_image != nullptr) {
    obs::Session session;
    service.record_into(session, "identity");
    *ledger_image = session.ledger.to_jsonl(/*strip_timing=*/true);
  }
  return result;
}

TEST(ServeDeterminism, OutputStreamsBitIdenticalAcrossThreadCounts) {
  constexpr std::size_t kSessions = 64;  // all 8 ratios, 8 sessions each
  constexpr std::size_t kSamples = 600;
  std::string baseline_ledger;
  const auto baseline =
      run_identity_workload(1, kSessions, kSamples, &baseline_ledger);
  for (unsigned threads : {2u, 4u, 8u}) {
    std::string ledger;
    const auto got = run_identity_workload(threads, kSessions, kSamples, &ledger);
    ASSERT_EQ(got.size(), baseline.size());
    for (std::size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i], baseline[i])
          << "session " << i << " diverged at threads=" << threads;
    }
    // The deterministic ledger projection (timing stripped) must also be
    // bit-identical — scheduling may not leak into recorded semantics.
    EXPECT_EQ(ledger, baseline_ledger) << "threads=" << threads;
  }
}

TEST(ServeScheduler, WorkQuantumBoundsPerDispatchWork) {
  ServiceOptions opt;
  opt.work_quantum = 32;
  opt.input_ring = 2'048;
  opt.output_ring = 4'096;
  SrcService service(opt);
  const SessionId id = service.open({48'000, 48'000});
  const auto stimulus = dsp::make_noise_stimulus(1'000, 3);
  ASSERT_EQ(service.push(id, stimulus.data(), stimulus.size()), stimulus.size());

  service.step();
  const SessionStats* stats = service.stats(id);
  ASSERT_NE(stats, nullptr);
  EXPECT_EQ(stats->dispatches, 1u);
  EXPECT_EQ(stats->converted_in, opt.work_quantum)
      << "one dispatch converts exactly one quantum when work abounds";
  service.step();
  EXPECT_EQ(stats->converted_in, 2 * opt.work_quantum);
}

TEST(ServeConcurrency, ClientThreadsPushPullWhileServiceSteps) {
  constexpr std::size_t kClients = 4;
  constexpr std::size_t kSamples = 20'000;
  ServiceOptions opt;
  opt.threads = 4;
  opt.input_ring = 512;
  opt.output_ring = 512;
  SrcService service(opt);

  std::vector<SessionId> ids;
  for (std::size_t i = 0; i < kClients; ++i) {
    ids.push_back(service.open({kRatioTable[i][0], kRatioTable[i][1]}));
    ASSERT_TRUE(ids.back().valid());
  }

  std::vector<std::uint64_t> client_pulled(kClients, 0);
  std::atomic<std::size_t> active{kClients};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (std::size_t i = 0; i < kClients; ++i) {
    clients.emplace_back([&service, &client_pulled, &active, id = ids[i], i] {
      const auto stimulus = dsp::make_noise_stimulus(kSamples, 0xc11e47 + i);
      std::vector<StereoSample> out(256);
      std::size_t fed = 0;
      while (fed < kSamples) {
        fed += service.push(id, stimulus.data() + fed, kSamples - fed);
        std::size_t got;
        while ((got = service.pull(id, out.data(), out.size())) > 0) {
          client_pulled[i] += got;
        }
      }
      active.fetch_sub(1, std::memory_order_release);
    });
  }
  // The control thread keeps stepping while the clients hammer the rings.
  while (active.load(std::memory_order_acquire) > 0) {
    service.step();
  }
  for (auto& t : clients) t.join();
  // After the join the control thread takes over each session's client
  // side (SPSC hand-off is ordered by the join) and drains the tail —
  // alternating pull and step, since a full output ring gates scheduling.
  std::vector<StereoSample> out(256);
  bool progress = true;
  while (progress) {
    progress = false;
    for (std::size_t i = 0; i < kClients; ++i) {
      std::size_t got;
      while ((got = service.pull(ids[i], out.data(), out.size())) > 0) {
        client_pulled[i] += got;
        progress = true;
      }
    }
    if (service.step() > 0) progress = true;
  }
  for (std::size_t i = 0; i < kClients; ++i) {
    const SessionStats* stats = service.stats(ids[i]);
    ASSERT_NE(stats, nullptr);
    EXPECT_EQ(stats->accepted, kSamples);
    EXPECT_EQ(stats->converted_in, kSamples);
    EXPECT_EQ(stats->produced, stats->pulled);
    EXPECT_EQ(stats->pulled, client_pulled[i]);
  }
}

TEST(ServeObs, RecordsRatioEntriesAndRunSummary) {
  ServiceOptions opt;
  SrcService service(opt);
  const SessionId a = service.open({44'100, 48'000});
  const SessionId b = service.open({44'100, 48'000});
  const SessionId c = service.open({8'000, 48'000});
  const auto stimulus = dsp::make_noise_stimulus(500, 11);
  for (const SessionId id : {a, b, c}) pump_session(service, id, stimulus);
  ASSERT_TRUE(service.close(c));
  service.step();  // fold the closed session into the ratio aggregates

  obs::Session session;
  service.record_into(session, "unit");
  // Two ratios + the resilience census + the run summary.
  ASSERT_EQ(session.ledger.size(), 4u);

  const auto& entries = session.ledger.entries();
  const obs::LedgerEntry* ratio_a = nullptr;
  const obs::LedgerEntry* ratio_c = nullptr;
  const obs::LedgerEntry* run = nullptr;
  for (const auto& e : entries) {
    if (e.phase == "serve.ratio" && e.design == "44100->48000") ratio_a = &e;
    if (e.phase == "serve.ratio" && e.design == "8000->48000") ratio_c = &e;
    if (e.phase == "serve.run") run = &e;
  }
  ASSERT_NE(ratio_a, nullptr);
  ASSERT_NE(ratio_c, nullptr);
  ASSERT_NE(run, nullptr);
  EXPECT_EQ(ratio_a->counter("sessions"), 2u);
  EXPECT_EQ(ratio_a->counter("samples_in"), 1'000u);
  EXPECT_EQ(ratio_c->counter("sessions"), 1u);
  EXPECT_EQ(ratio_c->counter("converted_in"), 500u);
  EXPECT_EQ(run->design, "unit");
  EXPECT_EQ(run->counter("sessions_opened"), 3u);
  EXPECT_EQ(run->counter("sessions_closed"), 1u);
  EXPECT_EQ(run->counter("ratios"), 2u);
  EXPECT_EQ(run->counter("samples_in"), 1'500u);
  EXPECT_NE(run->input_hash, 0u);
  EXPECT_EQ(session.registry.counter("serve.samples_in"), 1'500u);
  EXPECT_GT(session.registry.counter("serve.dispatches"), 0u);
  ASSERT_NE(session.registry.histogram("serve.job_ns"), nullptr);
  EXPECT_GT(session.registry.histogram("serve.job_ns")->count(), 0u);
}

}  // namespace
}  // namespace scflow::serve
