// Verifies the synthesisable SRC architectures (RTL IR) against the
// quantised golden model — the "RTL SystemC vs golden" leg of the paper's
// refinement verification — and checks the architectural knobs that drive
// the Fig. 10 area differences.
#include <gtest/gtest.h>

#include "core/run.hpp"
#include "dsp/stimulus.hpp"
#include "rtl/passes.hpp"
#include "rtl/src_design.hpp"
#include "rtl/src_sim.hpp"

namespace scflow::rtl {
namespace {

using dsp::SrcEvent;
using dsp::SrcMode;
using P = dsp::SrcParams;

std::vector<SrcEvent> schedule(SrcMode mode, std::size_t n, std::uint64_t seed) {
  const auto inputs = dsp::make_noise_stimulus(n, seed);
  return dsp::make_schedule(inputs, P::input_period_ps(mode), n, P::output_period_ps(mode));
}

std::vector<dsp::StereoSample> golden(SrcMode mode, const std::vector<SrcEvent>& ev,
                                      bool bug = false) {
  model::RunOptions opt;
  opt.quantized_time = true;
  opt.inject_corner_bug = bug;
  return model::run_level(model::RefinementLevel::kAlgorithmicCpp, mode, ev, opt).outputs;
}

TEST(SrcDesigns, AllConfigsValidate) {
  for (const auto& cfg : {rtl_opt_config(), rtl_unopt_config(), vhdl_ref_config()}) {
    const Design d = build_src_design(cfg);
    EXPECT_GT(d.nodes().size(), 200u) << cfg.name;
    EXPECT_GT(d.registers().size(), 20u) << cfg.name;
  }
}

TEST(SrcDesigns, RegisterBitsReflectArchitecture) {
  const auto opt = build_src_design(rtl_opt_config()).stats();
  const auto unopt = build_src_design(rtl_unopt_config()).stats();
  const auto ref = build_src_design(vhdl_ref_config()).stats();
  // The conservative RTL keeps removable registers; the C-spec reference
  // architecture carries 32-bit index registers and split accumulators.
  EXPECT_GT(unopt.register_bits, opt.register_bits);
  EXPECT_GT(ref.register_bits, unopt.register_bits);
}

class SrcDesignEquivalence
    : public ::testing::TestWithParam<std::tuple<const char*, SrcMode>> {};

TEST_P(SrcDesignEquivalence, MatchesQuantisedGolden) {
  const auto [which, mode] = GetParam();
  SrcArchConfig cfg;
  if (std::string(which) == "rtl_opt") cfg = rtl_opt_config();
  else if (std::string(which) == "rtl_unopt") cfg = rtl_unopt_config();
  else cfg = vhdl_ref_config();

  const auto ev = schedule(mode, 260, 17);
  const auto want = golden(mode, ev);
  const Design d = build_src_design(cfg);
  const auto got = run_src_design(d, mode, ev);
  ASSERT_EQ(got.outputs.size(), want.size()) << cfg.name;
  for (std::size_t i = 0; i < want.size(); ++i)
    ASSERT_EQ(got.outputs[i], want[i]) << cfg.name << " output " << i;
}

INSTANTIATE_TEST_SUITE_P(
    Architectures, SrcDesignEquivalence,
    ::testing::Values(std::make_tuple("rtl_opt", SrcMode::k44_1To48),
                      std::make_tuple("rtl_opt", SrcMode::k48To44_1),
                      std::make_tuple("rtl_opt", SrcMode::k48To48),
                      std::make_tuple("rtl_unopt", SrcMode::k44_1To48),
                      std::make_tuple("vhdl_ref", SrcMode::k44_1To48),
                      std::make_tuple("vhdl_ref", SrcMode::k48To48)));

TEST(SrcDesigns, OptimisedDesignSurvivesPasses) {
  const auto ev = schedule(SrcMode::k44_1To48, 200, 3);
  const auto want = golden(SrcMode::k44_1To48, ev);
  PassOptions popt;
  popt.merge_registers = true;
  const Design d = run_passes(build_src_design(rtl_opt_config()), popt);
  const auto got = run_src_design(d, SrcMode::k44_1To48, ev);
  ASSERT_EQ(got.outputs.size(), want.size());
  for (std::size_t i = 0; i < want.size(); ++i) ASSERT_EQ(got.outputs[i], want[i]);
}

TEST(SrcDesigns, CornerBugRefinesDownToTheIrDesign) {
  // Pass-through mode hits the mu == 0 corner; the bugged IR design must
  // match the bugged golden model (function-preserving refinement of a
  // bug, paper §4.7).
  SrcArchConfig cfg = rtl_opt_config();
  cfg.inject_corner_bug = true;
  const auto ev = schedule(SrcMode::k48To48, 260, 5);
  const auto want = golden(SrcMode::k48To48, ev, true);
  const auto want_clean = golden(SrcMode::k48To48, ev, false);
  const auto got = run_src_design(build_src_design(cfg), SrcMode::k48To48, ev);
  ASSERT_EQ(got.outputs.size(), want.size());
  for (std::size_t i = 0; i < want.size(); ++i) ASSERT_EQ(got.outputs[i], want[i]);
  EXPECT_NE(want, want_clean) << "bug corner should actually trigger";
}

TEST(SrcDesigns, RamReadHookObservesMacTraffic) {
  const auto ev = schedule(SrcMode::k44_1To48, 120, 9);
  const Design d = build_src_design(rtl_opt_config());
  Interpreter it(d);
  std::uint64_t reads = 0;
  it.set_ram_read_hook([&reads](int, std::uint64_t) { ++reads; });
  run_src_design(d, SrcMode::k44_1To48, ev, &it);
  EXPECT_GT(reads, 0u);
}

}  // namespace
}  // namespace scflow::rtl
