// Tests for the gate-level substrate: cell library, lowering correctness
// (adders/multipliers/comparators vs word-level reference), logic
// optimisation and scan insertion.
#include <gtest/gtest.h>

#include <random>

#include "dtypes/bit_int.hpp"
#include "formal/cec.hpp"
#include "netlist/lower.hpp"
#include "netlist/netlist.hpp"
#include "netlist/opt.hpp"
#include "hdlsim/gate_sim.hpp"
#include "rtl/builder.hpp"

namespace scflow::nl {
namespace {

TEST(CellLibrary, SequentialCostsMoreThanCombinational) {
  EXPECT_GT(CellLibrary::area(CellType::kDff), CellLibrary::area(CellType::kNand2));
  EXPECT_GT(CellLibrary::area(CellType::kSdff), CellLibrary::area(CellType::kDff));
  EXPECT_EQ(cell_input_count(CellType::kMux2), 3);
  EXPECT_TRUE(cell_is_sequential(CellType::kSdff));
  EXPECT_FALSE(cell_is_sequential(CellType::kXor2));
}

TEST(NetlistIr, ValidateCatchesUndrivenNets) {
  Netlist n("bad");
  const NetId floating = n.new_net();
  n.add_cell(CellType::kInv, {floating});
  EXPECT_THROW(n.validate(), std::logic_error);
}

/// Helper: lower a design, simulate it with GateSim and compare against
/// the rtl::Interpreter-style reference for random inputs.
struct GateHarness {
  explicit GateHarness(const rtl::Design& d, bool optimize = false)
      : netlist(lower_to_gates(d, {})) {
    if (optimize) netlist = optimize_gates(netlist);
    sim = std::make_unique<hdlsim::GateSim>(netlist);
  }
  Netlist netlist;
  std::unique_ptr<hdlsim::GateSim> sim;
};

TEST(Lowering, AdderMatchesReference) {
  rtl::DesignBuilder b("add16");
  auto x = b.input("x", 16);
  auto y = b.input("y", 16);
  b.output("sum", b.add(x, y));
  const rtl::Design d = b.finalise();
  GateHarness h(d);
  std::mt19937_64 rng(1);
  for (int i = 0; i < 300; ++i) {
    const std::uint64_t xv = rng() & 0xffff, yv = rng() & 0xffff;
    h.sim->set_input("x", xv);
    h.sim->set_input("y", yv);
    h.sim->settle();
    ASSERT_EQ(h.sim->output("sum"), (xv + yv) & 0xffff);
  }
}

class LoweringMultiply : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(LoweringMultiply, SignedMultiplierMatchesReference) {
  const auto [aw, bw] = GetParam();
  rtl::DesignBuilder b("mul");
  auto x = b.input("x", aw);
  auto y = b.input("y", bw);
  b.output("p", b.mul(x, y, aw + bw));
  GateHarness h(b.finalise());
  std::mt19937_64 rng(7 * aw + bw);
  for (int i = 0; i < 200; ++i) {
    const std::int64_t xv = scflow::wrap_to_width(static_cast<std::int64_t>(rng()), aw, true);
    const std::int64_t yv = scflow::wrap_to_width(static_cast<std::int64_t>(rng()), bw, true);
    h.sim->set_input("x", static_cast<std::uint64_t>(xv) & scflow::bit_mask(aw));
    h.sim->set_input("y", static_cast<std::uint64_t>(yv) & scflow::bit_mask(bw));
    h.sim->settle();
    ASSERT_EQ(h.sim->output("p"), static_cast<std::uint64_t>(xv * yv) & scflow::bit_mask(aw + bw))
        << xv << " * " << yv;
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, LoweringMultiply,
                         ::testing::Values(std::make_tuple(4, 4),
                                           std::make_tuple(8, 5),
                                           std::make_tuple(16, 17),
                                           std::make_tuple(11, 17)));

TEST(Lowering, ComparatorsAndMuxMatchReference) {
  rtl::DesignBuilder b("cmp");
  auto x = b.input("x", 12);
  auto y = b.input("y", 12);
  b.output("ltu", b.lt_u(x, y));
  b.output("lts", b.lt_s(x, y));
  b.output("eq", b.eq(x, y));
  b.output("mx", b.select(b.lt_u(x, y), x, y));
  GateHarness h(b.finalise());
  std::mt19937_64 rng(3);
  for (int i = 0; i < 300; ++i) {
    const std::uint64_t xv = rng() & 0xfff, yv = rng() & 0xfff;
    h.sim->set_input("x", xv);
    h.sim->set_input("y", yv);
    h.sim->settle();
    ASSERT_EQ(h.sim->output("ltu"), xv < yv ? 1u : 0u);
    ASSERT_EQ(h.sim->output("lts"),
              scflow::sign_extend(xv, 12) < scflow::sign_extend(yv, 12) ? 1u : 0u);
    ASSERT_EQ(h.sim->output("eq"), xv == yv ? 1u : 0u);
    ASSERT_EQ(h.sim->output("mx"), xv < yv ? xv : yv);
  }
}

TEST(Lowering, SequentialCounterWorksAtGateLevel) {
  rtl::DesignBuilder b("cnt");
  auto en = b.input("en", 1);
  auto cnt = b.reg("cnt", 8, 5);
  b.assign(cnt, en, b.add(cnt.q, b.c(8, 1)));
  b.output("q", cnt.q);
  GateHarness h(b.finalise());
  h.sim->set_input("en", 1);
  h.sim->settle();
  EXPECT_EQ(h.sim->output("q"), 5u);  // reset/init value
  for (int i = 0; i < 10; ++i) h.sim->step();
  EXPECT_EQ(h.sim->output("q"), 15u);
  h.sim->set_input("en", 0);
  h.sim->step();
  h.sim->step();
  EXPECT_EQ(h.sim->output("q"), 15u);
}

TEST(Lowering, XPropagatesFromXInput) {
  rtl::DesignBuilder b("xprop");
  auto x = b.input("x", 4);
  auto y = b.input("y", 4);
  b.output("s", b.add(x, y));
  b.output("masked", b.and_(x, b.c(4, 0)));  // 0 dominates X
  GateHarness h(b.finalise(), true);
  h.sim->set_input("y", 3);
  h.sim->set_input_x("x");
  h.sim->settle();
  EXPECT_FALSE(h.sim->output_bits("s").is_fully_defined());
  EXPECT_THROW(h.sim->output("s"), std::runtime_error);
  EXPECT_EQ(h.sim->output("masked"), 0u);  // constant-0 AND absorbs X
}

TEST(GateOpt, FoldsConstantsAndDedupes) {
  rtl::DesignBuilder b("fold");
  auto x = b.input("x", 8);
  auto a = b.add(x, b.c(8, 0));           // identity at word level is kept
  auto m1 = b.and_(x, b.c(8, 0xff));      // AND with all-ones
  b.output("o1", a);
  b.output("o2", m1);
  b.output("o3", b.add(x, b.c(8, 0)));    // duplicate logic
  // Lower *without* word-level passes so the gate optimiser has work.
  Netlist n = lower_to_gates(b.finalise(), {});
  GateOptStats stats;
  const Netlist opt = optimize_gates(n, &stats);
  EXPECT_LT(opt.cells().size(), n.cells().size());
  EXPECT_GT(stats.rewrites, 0u);

  // The pass is *proven* behaviour-preserving by CEC; the simulation below
  // stays as a smoke check of the optimised netlist under GateSim.
  EXPECT_TRUE(formal::check_equivalence(n, opt).equivalent());

  hdlsim::GateSim sim(opt);
  sim.set_input("x", 0x5a);
  sim.settle();
  EXPECT_EQ(sim.output("o1"), 0x5au);
  EXPECT_EQ(sim.output("o2"), 0x5au);
  EXPECT_EQ(sim.output("o3"), 0x5au);
}

TEST(GateOpt, PreservesSequentialBehaviour) {
  rtl::DesignBuilder b("seq");
  auto in = b.input("in", 8);
  auto acc = b.reg("acc", 16);
  b.assign_always(acc, b.add(acc.q, b.sext(in, 16)));
  b.output("acc", acc.q);
  const rtl::Design d = b.finalise();
  GateHarness plain(d, false), opt(d, true);
  // Full equivalence proof over the flop boundary (every next-state and
  // output cone); the lockstep simulation below stays as a smoke tier.
  EXPECT_TRUE(formal::check_equivalence(plain.netlist, opt.netlist).equivalent());
  std::mt19937_64 rng(11);
  for (int i = 0; i < 100; ++i) {
    const std::uint64_t v = rng() & 0xff;
    plain.sim->set_input("in", v);
    opt.sim->set_input("in", v);
    plain.sim->step();
    opt.sim->step();
    plain.sim->settle();
    opt.sim->settle();
    ASSERT_EQ(plain.sim->output("acc"), opt.sim->output("acc"));
  }
}

TEST(ScanChain, ReplacesFlopsAndShiftsData) {
  rtl::DesignBuilder b("scan");
  auto d_in = b.input("d", 1);
  auto r1 = b.reg("r1", 1);
  auto r2 = b.reg("r2", 1);
  b.assign_always(r1, d_in);
  b.assign_always(r2, r1.q);
  b.output("q", r2.q);
  Netlist n = lower_to_gates(b.finalise(), {});
  const Netlist pre_scan = n;
  insert_scan_chain(n);
  // Scan insertion proven equivalent modulo the scan ports.
  EXPECT_TRUE(formal::check_equivalence(pre_scan, n, nullptr,
                                        formal::CecOptions::scan_modulo())
                  .equivalent());

  std::size_t sdffs = 0, dffs = 0;
  for (const auto& c : n.cells()) {
    if (c.type == CellType::kSdff) ++sdffs;
    if (c.type == CellType::kDff) ++dffs;
  }
  EXPECT_EQ(sdffs, 2u);
  EXPECT_EQ(dffs, 0u);

  // Shift a pattern through the chain in scan mode.
  hdlsim::GateSim sim(n);
  sim.set_input("d", 0);
  sim.set_input("scan_enable", 1);
  sim.set_input("scan_in", 1);
  sim.step();
  sim.set_input("scan_in", 0);
  sim.step();
  sim.settle();
  // After two shifts the first 1 reached the end of the 2-flop chain.
  EXPECT_EQ(sim.output("scan_out"), 1u);
}

TEST(AreaReportTest, SplitsCombinationalAndSequential) {
  rtl::DesignBuilder b("area");
  auto x = b.input("x", 8);
  auto r = b.reg("r", 8);
  b.assign_always(r, b.add(x, r.q));
  b.output("o", r.q);
  const Netlist n = lower_to_gates(b.finalise(), {});
  const AreaReport rep = report_area(n);
  EXPECT_EQ(rep.flop_count, 8u);
  EXPECT_GT(rep.combinational, 0.0);
  EXPECT_NEAR(rep.sequential, 8 * CellLibrary::area(CellType::kDff), 1e-9);
  EXPECT_GT(rep.total(), rep.combinational);
}

TEST(AreaReportTest, MacrosAreExcluded) {
  rtl::DesignBuilder b("macro_area");
  auto addr = b.input("a", 4);
  const int mem = b.memory("ram", 4, 8);
  b.ram_write(mem, addr, b.c(8, 0), b.c(1, 0));
  b.output("d", b.ram_read(mem, addr));
  const Netlist n = lower_to_gates(b.finalise(), {});
  // Only the TIE cells and read-enable plumbing appear; the RAM itself
  // contributes no area.
  const AreaReport rep = report_area(n);
  EXPECT_LT(rep.total(), 100.0);
  EXPECT_EQ(n.macros.size(), 1u);
}

}  // namespace
}  // namespace scflow::nl
