// Tests for the behavioural synthesiser: scheduling invariants, register
// allocation, a small end-to-end kernel, and the behavioural SRC designs'
// bit-exact equivalence with the quantised golden model.
#include <gtest/gtest.h>

#include "core/run.hpp"
#include "dsp/stimulus.hpp"
#include "hls/kernel.hpp"
#include "hls/schedule.hpp"
#include "hls/src_beh.hpp"
#include "hls/synthesize.hpp"
#include "rtl/interpreter.hpp"
#include "rtl/src_sim.hpp"

namespace scflow::hls {
namespace {

using dsp::SrcMode;
using P = dsp::SrcParams;

/// A little MAC kernel: acc += a[i] * b over 4 iterations, where a[i] is a
/// ROM table and b an external; captures the final accumulator.
Kernel make_mac_kernel(rtl::DesignBuilder& b, int rom_index) {
  Kernel k("mac4", 4, 2);
  const ValueId bext = k.external(b.input("b", 8));
  const int acc = k.add_state("acc", 20, k.constant(20, 0));
  const ValueId a = k.rom_read(rom_index, k.zext(k.iter(), 3), 8);
  const ValueId prod = k.mul(a, bext, 16);
  const ValueId acc_new = k.add(k.state(acc), k.sext(prod, 20));
  k.update(acc, kNoValue, acc_new);
  k.capture("result", k.eq(k.iter(), k.constant(2, 3)), acc_new);
  return k;
}

TEST(HlsSchedule, RespectsResourceConstraints) {
  rtl::DesignBuilder b("t");
  const int rom = b.rom("tbl", 3, 8, {1, 2, 3, 4, 5, 6, 7, 8});
  const Kernel k = make_mac_kernel(b, rom);
  ResourceConstraints rc;
  const Schedule s = schedule_kernel(k, rc);
  for (int st = 0; st < s.num_steps; ++st) {
    EXPECT_LE(s.mult_use[static_cast<std::size_t>(st)], rc.multipliers);
    EXPECT_LE(s.alu_use[static_cast<std::size_t>(st)], rc.alus);
    EXPECT_LE(s.ram_use[static_cast<std::size_t>(st)], rc.ram_ports);
    EXPECT_LE(s.rom_use[static_cast<std::size_t>(st)], rc.rom_ports);
  }
  // Dependency chain rom -> mul -> add needs three steps.
  EXPECT_GE(s.num_steps, 3);
}

TEST(HlsSchedule, DependenciesComeBeforeConsumers) {
  rtl::DesignBuilder b("t");
  const int rom = b.rom("tbl", 3, 8, {1, 2, 3, 4, 5, 6, 7, 8});
  const Kernel k = make_mac_kernel(b, rom);
  const Schedule s = schedule_kernel(k, ResourceConstraints{});
  for (std::size_t i = 0; i < k.nodes().size(); ++i) {
    if (s.step_of[i] < 0) continue;
    for (ValueId a : k.nodes()[i].args) {
      if (s.step_of[static_cast<std::size_t>(a)] < 0) continue;  // free op
      EXPECT_LT(s.step_of[static_cast<std::size_t>(a)], s.step_of[i]);
    }
  }
}

TEST(HlsSchedule, RegisterLifetimesDoNotOverlap) {
  rtl::DesignBuilder b("t");
  const int rom = b.rom("tbl", 3, 8, {1, 2, 3, 4, 5, 6, 7, 8});
  const Kernel k = make_mac_kernel(b, rom);
  const Schedule s = schedule_kernel(k, ResourceConstraints{});
  // For every temp register, collect the [def, last_use] intervals of its
  // tenants and assert pairwise disjointness.
  std::map<int, std::vector<std::pair<int, int>>> intervals;
  for (std::size_t i = 0; i < k.nodes().size(); ++i) {
    if (s.reg_of[i] < 0) continue;
    intervals[s.reg_of[i]].push_back({s.step_of[i], s.temp_regs[static_cast<std::size_t>(s.reg_of[i])].free_after});
  }
  for (auto& [reg, iv] : intervals) {
    std::sort(iv.begin(), iv.end());
    for (std::size_t j = 1; j < iv.size(); ++j)
      EXPECT_LE(iv[j - 1].second, iv[j].first) << "register " << reg;
  }
}

TEST(HlsSchedule, HandshakePaddingExtendsSlots) {
  rtl::DesignBuilder b("t");
  const int rom = b.rom("tbl", 3, 8, {1, 2, 3, 4, 5, 6, 7, 8});
  Kernel k("k", 2, 1);
  const int mem = b.memory("m", 3, 8);
  const ValueId r = k.ram_read(mem, k.zext(k.iter(), 3), 8);
  const int acc = k.add_state("a", 10, k.constant(10, 0));
  k.update(acc, kNoValue, k.add(k.state(acc), k.sext(r, 10)));
  k.capture("out", k.eq(k.iter(), k.constant(1, 1)), k.state(acc));
  (void)rom;

  ResourceConstraints fast, slow;
  slow.ram_handshake_states = 1;
  const Schedule sf = schedule_kernel(k, fast);
  const Schedule ss = schedule_kernel(k, slow);
  EXPECT_EQ(sf.num_steps, ss.num_steps);
  EXPECT_GT(ss.num_slots, sf.num_slots);
}

TEST(HlsSynthesize, Mac4KernelComputesCorrectly) {
  rtl::DesignBuilder b("mac4_top");
  const int rom = b.rom("tbl", 3, 8, {1, 2, 3, 4, 5, 6, 7, 8});
  const Kernel k = make_mac_kernel(b, rom);
  const rtl::Sig start = b.input("start", 1);
  const SynthesisResult syn = synthesize_kernel(b, k, start, ResourceConstraints{});
  b.output("busy", syn.busy);
  b.output("done", syn.done_pulse);
  b.output("result", syn.captures.at("result"));
  rtl::Design d = b.finalise();

  rtl::Interpreter it(d);
  it.set_input("b", 10);
  it.set_input("start", 1);
  it.step();
  it.set_input("start", 0);
  int guard = 0;
  for (;;) {
    it.evaluate();
    if (it.output("done") == 1) break;
    it.step();
    ASSERT_LT(++guard, 200) << "kernel did not finish";
  }
  it.step();
  it.evaluate();
  // acc = (1+2+3+4) * 10 = 100.
  EXPECT_EQ(it.output("result"), 100u);
  EXPECT_EQ(it.output("busy"), 0u);
}

TEST(HlsSynthesize, BackToBackInvocationsReinitialiseState) {
  rtl::DesignBuilder b("mac4_top");
  const int rom = b.rom("tbl", 3, 8, {1, 2, 3, 4, 5, 6, 7, 8});
  const Kernel k = make_mac_kernel(b, rom);
  const rtl::Sig start = b.input("start", 1);
  const SynthesisResult syn = synthesize_kernel(b, k, start, ResourceConstraints{});
  b.output("done", syn.done_pulse);
  b.output("result", syn.captures.at("result"));
  rtl::Design d = b.finalise();

  rtl::Interpreter it(d);
  for (int run = 0; run < 3; ++run) {
    it.set_input("b", 5 + run);
    it.set_input("start", 1);
    it.step();
    it.set_input("start", 0);
    int guard = 0;
    for (;;) {
      it.evaluate();
      if (it.output("done") == 1) break;
      it.step();
      ASSERT_LT(++guard, 200);
    }
    it.step();
    it.evaluate();
    EXPECT_EQ(it.output("result"), static_cast<std::uint64_t>(10 * (5 + run)));
  }
}

// --- the behavioural SRC designs ---

std::vector<dsp::SrcEvent> schedule_events(SrcMode mode, std::size_t n, std::uint64_t seed) {
  const auto inputs = dsp::make_noise_stimulus(n, seed);
  return dsp::make_schedule(inputs, P::input_period_ps(mode), n, P::output_period_ps(mode));
}

TEST(BehSrc, UnoptScheduleIsLongerThanOpt) {
  Schedule s_unopt, s_opt;
  (void)build_beh_src_design(beh_unopt_config(), &s_unopt);
  (void)build_beh_src_design(beh_opt_config(), &s_opt);
  EXPECT_EQ(s_unopt.num_steps, s_opt.num_steps);   // same operations
  EXPECT_GT(s_unopt.num_slots, s_opt.num_slots);   // handshake wait states
}

class BehSrcEquivalence : public ::testing::TestWithParam<std::tuple<bool, SrcMode>> {};

TEST_P(BehSrcEquivalence, MatchesQuantisedGolden) {
  const auto [optimised, mode] = GetParam();
  const auto ev = schedule_events(mode, 240, 21);
  model::RunOptions qopt;
  qopt.quantized_time = true;
  const auto want =
      model::run_level(model::RefinementLevel::kAlgorithmicCpp, mode, ev, qopt).outputs;
  const rtl::Design d =
      build_beh_src_design(optimised ? beh_opt_config() : beh_unopt_config());
  const auto got = rtl::run_src_design(d, mode, ev);
  ASSERT_EQ(got.outputs.size(), want.size());
  for (std::size_t i = 0; i < want.size(); ++i)
    ASSERT_EQ(got.outputs[i], want[i]) << d.name() << " output " << i;
}

INSTANTIATE_TEST_SUITE_P(
    Configs, BehSrcEquivalence,
    ::testing::Values(std::make_tuple(true, SrcMode::k44_1To48),
                      std::make_tuple(true, SrcMode::k48To44_1),
                      std::make_tuple(false, SrcMode::k44_1To48),
                      std::make_tuple(false, SrcMode::k48To48)));

TEST(BehSrc, UnoptHasWiderDatapathAndMoreRegisterBits) {
  const auto unopt = build_beh_src_design(beh_unopt_config()).stats();
  const auto opt = build_beh_src_design(beh_opt_config()).stats();
  EXPECT_GT(unopt.register_bits, opt.register_bits);
}

}  // namespace
}  // namespace scflow::hls

namespace scflow::hls {
namespace {

// Extra resources shorten the schedule without changing results: exercises
// the binder's multi-instance path (several FU instances per class).
TEST(HlsSchedule, ExtraResourcesShortenTheSchedule) {
  rtl::DesignBuilder b("t2");
  const int rom = b.rom("tbl", 3, 8, {1, 2, 3, 4, 5, 6, 7, 8});
  Kernel k("dual", 4, 2);
  const ValueId bext = k.external(b.input("b", 8));
  const int acc = k.add_state("acc", 24, k.constant(24, 0));
  // Two independent MAC chains per iteration: with one multiplier they
  // serialise; with two they run in parallel steps.
  const ValueId a0 = k.rom_read(rom, k.zext(k.iter(), 3), 8);
  const ValueId a1 = k.rom_read(rom, k.zext(k.iter(), 3), 8);
  const ValueId p0 = k.mul(a0, bext, 16);
  const ValueId p1 = k.mul(a1, bext, 16);
  const ValueId sum = k.add(k.sext(p0, 24), k.sext(p1, 24));
  const ValueId acc_new = k.add(k.state(acc), sum);
  k.update(acc, kNoValue, acc_new);
  k.capture("result", k.eq(k.iter(), k.constant(2, 3)), acc_new);

  ResourceConstraints one, two;
  two.multipliers = 2;
  two.alus = 2;
  const Schedule s1 = schedule_kernel(k, one);
  const Schedule s2 = schedule_kernel(k, two);
  EXPECT_LT(s2.num_steps, s1.num_steps);

  // Both bindings compute the same value: (1+2+3+4)*2*b = 20b... per-iter
  // both reads alias the same ROM row, so result = 2*b*(1+2+3+4).
  for (const ResourceConstraints& rc : {one, two}) {
    rtl::DesignBuilder bb(rc.multipliers == 1 ? "one_mult" : "two_mult");
    const int rr = bb.rom("tbl", 3, 8, {1, 2, 3, 4, 5, 6, 7, 8});
    Kernel kk("dual", 4, 2);
    const ValueId be = kk.external(bb.input("b", 8));
    const int ac = kk.add_state("acc", 24, kk.constant(24, 0));
    const ValueId x0 = kk.rom_read(rr, kk.zext(kk.iter(), 3), 8);
    const ValueId x1 = kk.rom_read(rr, kk.zext(kk.iter(), 3), 8);
    const ValueId q0 = kk.mul(x0, be, 16);
    const ValueId q1 = kk.mul(x1, be, 16);
    const ValueId sm = kk.add(kk.sext(q0, 24), kk.sext(q1, 24));
    const ValueId an = kk.add(kk.state(ac), sm);
    kk.update(ac, kNoValue, an);
    kk.capture("result", kk.eq(kk.iter(), kk.constant(2, 3)), an);
    const rtl::Sig start = bb.input("start", 1);
    const SynthesisResult syn = synthesize_kernel(bb, kk, start, rc);
    bb.output("done", syn.done_pulse);
    bb.output("result", syn.captures.at("result"));
    rtl::Design d = bb.finalise();

    rtl::Interpreter it(d);
    it.set_input("b", 7);
    it.set_input("start", 1);
    it.step();
    it.set_input("start", 0);
    int guard = 0;
    for (;;) {
      it.evaluate();
      if (it.output("done") == 1) break;
      it.step();
      ASSERT_LT(++guard, 300);
    }
    it.step();
    it.evaluate();
    EXPECT_EQ(it.output("result"), 140u) << d.name();  // 2*7*(1+2+3+4)
  }
}

}  // namespace
}  // namespace scflow::hls
