// Tests for the minisc discrete-event kernel: scheduling phases, events,
// signals, ports, clocks, processes.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "kernel/clock.hpp"
#include "kernel/event.hpp"
#include "kernel/module.hpp"
#include "kernel/port.hpp"
#include "kernel/signal.hpp"
#include "kernel/simulation.hpp"
#include "kernel/time.hpp"
#include "obs/registry.hpp"

namespace minisc {
namespace {

TEST(Time, UnitsAndArithmetic) {
  EXPECT_EQ(Time::ns(1).picoseconds(), 1000u);
  EXPECT_EQ(Time::us(1).picoseconds(), 1000'000u);
  EXPECT_EQ((Time::ns(3) + Time::ns(4)).picoseconds(), 7000u);
  EXPECT_EQ(Time::ns(40) * 3, Time::ns(120));
  EXPECT_EQ(Time::us(1) / Time::ns(40), 25u);
  EXPECT_LT(Time::ns(1), Time::ns(2));
}

// A module that runs a thread writing timestamps of its wake-ups.
class Waiter : public Module {
 public:
  Waiter(Simulation& sim, Event& e) : Module(sim, "waiter"), event_(&e) {
    thread("t", [this] {
      wakeups.push_back(this->sim().now());
      wait(*event_);
      wakeups.push_back(this->sim().now());
      wait(Time::ns(5));
      wakeups.push_back(this->sim().now());
    });
  }
  std::vector<Time> wakeups;

 private:
  Event* event_;
};

TEST(Scheduler, ThreadWaitsOnEventAndTime) {
  Simulation sim;
  Event e(sim, "e");
  Waiter w(sim, e);
  e.notify(Time::ns(10));
  sim.run();
  ASSERT_EQ(w.wakeups.size(), 3u);
  EXPECT_EQ(w.wakeups[0], Time::ps(0));   // initialisation run
  EXPECT_EQ(w.wakeups[1], Time::ns(10));  // timed notification
  EXPECT_EQ(w.wakeups[2], Time::ns(15));  // wait(5ns)
}

TEST(Scheduler, ImmediateNotifyWakesInSameEvaluatePhase) {
  Simulation sim;
  Event e(sim, "e");
  std::vector<std::string> order;

  class M : public Module {
   public:
    M(Simulation& sim, Event& e, std::vector<std::string>& order) : Module(sim, "m") {
      thread("waiter", [this, &e, &order] {
        wait(e);
        order.push_back("woken");
      });
      thread("notifier", [&e, &order] {
        order.push_back("notify");
        e.notify();  // immediate
      });
    }
  } m(sim, e, order);

  sim.run();
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], "notify");
  EXPECT_EQ(order[1], "woken");
  EXPECT_EQ(sim.now(), Time::ps(0));
}

TEST(Scheduler, DeltaNotifyTakesOneDeltaCycle) {
  Simulation sim;
  Event e(sim, "e");
  int woken_delta = -1;

  class M : public Module {
   public:
    M(Simulation& sim, Event& e, int& out) : Module(sim, "m") {
      thread("w", [this, &e, &out] {
        wait(e);
        out = static_cast<int>(this->sim().stats().delta_cycles);
      });
      thread("n", [&e] { e.notify_delta(); });
    }
  } m(sim, e, woken_delta);

  sim.run();
  EXPECT_GE(woken_delta, 1);
  EXPECT_EQ(sim.now(), Time::ps(0));  // no simulated time elapsed
}

TEST(Scheduler, CancelSuppressesTimedNotification) {
  Simulation sim;
  Event e(sim, "e");
  bool woken = false;

  class M : public Module {
   public:
    M(Simulation& sim, Event& e, bool& woken) : Module(sim, "m") {
      thread("w", [this, &e, &woken] {
        wait(e);
        woken = true;
      });
      thread("c", [this, &e] {
        wait(Time::ns(1));
        e.cancel();
      });
    }
  } m(sim, e, woken);

  e.notify(Time::ns(10));
  sim.run();
  EXPECT_FALSE(woken);
}

TEST(Scheduler, WaitAnyWakesOnFirstEventOnly) {
  Simulation sim;
  Event a(sim, "a"), b(sim, "b");
  std::vector<Time> wakeups;

  class M : public Module {
   public:
    M(Simulation& sim, Event& a, Event& b, std::vector<Time>& w) : Module(sim, "m") {
      thread("w", [this, &a, &b, &w] {
        wait_any({&a, &b});
        w.push_back(this->sim().now());
        wait_any({&a, &b});
        w.push_back(this->sim().now());
      });
    }
  } m(sim, a, b, wakeups);

  a.notify(Time::ns(3));
  b.notify(Time::ns(7));
  sim.run();
  ASSERT_EQ(wakeups.size(), 2u);
  EXPECT_EQ(wakeups[0], Time::ns(3));
  EXPECT_EQ(wakeups[1], Time::ns(7));  // stale registration must not double-wake
}

TEST(Signal, UpdateIsDeltaDelayed) {
  Simulation sim;
  Signal<int> s(sim, nullptr, "s", 0);
  std::vector<int> seen;

  class M : public Module {
   public:
    M(Simulation& sim, Signal<int>& s, std::vector<int>& seen) : Module(sim, "m") {
      thread("t", [&s, &seen] {
        s.write(42);
        seen.push_back(s.read());  // still old value in this evaluate phase
      });
      thread("r", [this, &s, &seen] {
        wait(s.value_changed_event());
        seen.push_back(s.read());  // new value after update phase
      });
    }
  } m(sim, s, seen);

  sim.run();
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[0], 0);
  EXPECT_EQ(seen[1], 42);
}

TEST(Signal, NoEventWhenValueUnchanged) {
  Simulation sim;
  Signal<int> s(sim, nullptr, "s", 7);
  bool fired = false;

  class M : public Module {
   public:
    M(Simulation& sim, Signal<int>& s, bool& fired) : Module(sim, "m") {
      thread("w", [this, &s] {
        s.write(7);  // same value: no change event
        wait(Time::ns(1));
        this->sim().stop();
      });
      thread("r", [this, &s, &fired] {
        wait(s.value_changed_event());
        fired = true;
      });
    }
  } m(sim, s, fired);

  sim.run();
  EXPECT_FALSE(fired);
}

TEST(Signal, BoolEdgesFire) {
  Simulation sim;
  Signal<bool> s(sim, nullptr, "s", false);
  std::vector<std::string> edges;

  class M : public Module {
   public:
    M(Simulation& sim, Signal<bool>& s, std::vector<std::string>& edges) : Module(sim, "m") {
      thread("drv", [this, &s] {
        wait(Time::ns(1));
        s.write(true);
        wait(Time::ns(1));
        s.write(false);
      });
      thread("pos", [this, &s, &edges] {
        while (true) {
          wait(s.posedge_event());
          edges.push_back("pos@" + std::to_string(this->sim().now().picoseconds()));
        }
      });
      thread("neg", [this, &s, &edges] {
        while (true) {
          wait(s.negedge_event());
          edges.push_back("neg@" + std::to_string(this->sim().now().picoseconds()));
        }
      });
    }
  } m(sim, s, edges);

  sim.run();
  ASSERT_EQ(edges.size(), 2u);
  EXPECT_EQ(edges[0], "pos@1000");
  EXPECT_EQ(edges[1], "neg@2000");
}

TEST(MethodProcessTest, RunsOnceAtInitThenOnEvents) {
  Simulation sim;
  Signal<int> s(sim, nullptr, "s", 0);
  int runs = 0;

  class M : public Module {
   public:
    M(Simulation& sim, Signal<int>& s, int& runs) : Module(sim, "m") {
      method("observer", [&runs] { ++runs; }).sensitive(s.value_changed_event());
      thread("drv", [this, &s] {
        wait(Time::ns(1));
        s.write(1);
        wait(Time::ns(1));
        s.write(2);
      });
    }
  } m(sim, s, runs);

  sim.run();
  EXPECT_EQ(runs, 3);  // init + two changes
}

TEST(ClockTest, GeneratesPeriodicEdges) {
  Simulation sim;
  Clock clk(sim, "clk", Time::ns(40));
  std::vector<std::uint64_t> posedge_times;

  class M : public Module {
   public:
    M(Simulation& sim, Clock& clk, std::vector<std::uint64_t>& t) : Module(sim, "m") {
      thread("mon", [this, &clk, &t] {
        while (t.size() < 5) {
          wait(clk.posedge_event());
          t.push_back(this->sim().now().picoseconds());
        }
        this->sim().stop();
      });
    }
  } m(sim, clk, posedge_times);

  sim.run();
  ASSERT_EQ(posedge_times.size(), 5u);
  for (std::size_t i = 0; i < 5; ++i)
    EXPECT_EQ(posedge_times[i], (i + 1) * 40000u);
  EXPECT_GE(clk.posedge_count(), 5u);
}

TEST(ClockTest, RejectsOddPeriods) {
  Simulation sim;
  EXPECT_THROW(Clock(sim, "bad", Time::ps(3)), std::invalid_argument);
}

TEST(Ports, UnboundPortFailsElaboration) {
  Simulation sim;
  class M : public Module {
   public:
    explicit M(Simulation& sim) : Module(sim, "m"), in(sim, this, "in") {}
    InPort<int> in;
  } m(sim);
  EXPECT_THROW(sim.run(), std::logic_error);
}

TEST(Ports, BoundPortReadsSignal) {
  Simulation sim;
  Signal<int> s(sim, nullptr, "s", 5);
  int seen = -1;

  class M : public Module {
   public:
    M(Simulation& sim, int& seen) : Module(sim, "m"), in(sim, this, "in") {
      thread("t", [this, &seen] { seen = in.read(); });
    }
    InPort<int> in;
  } m(sim, seen);

  m.in.bind(s);
  sim.run();
  EXPECT_EQ(seen, 5);
}

TEST(Ports, DoubleBindThrows) {
  Simulation sim;
  Signal<int> s(sim, nullptr, "s", 0);
  class M : public Module {
   public:
    explicit M(Simulation& sim) : Module(sim, "m"), in(sim, this, "in") {}
    InPort<int> in;
  } m(sim);
  m.in.bind(s);
  EXPECT_THROW(m.in.bind(s), std::logic_error);
}

TEST(Hierarchy, FullNamesFollowParentChain) {
  Simulation sim;
  class Child : public Module {
   public:
    Child(Module& p) : Module(p, "child"), sig(p.sim(), this, "sig", 0) {}
    Signal<int> sig;
  };
  class Top : public Module {
   public:
    explicit Top(Simulation& sim) : Module(sim, "top"), c(*this) {}
    Child c;
  } top(sim);

  EXPECT_EQ(top.c.full_name(), "top.child");
  EXPECT_EQ(top.c.sig.full_name(), "top.child.sig");
  EXPECT_EQ(sim.find_object("top.child.sig"), &top.c.sig);
  EXPECT_STREQ(top.c.sig.kind(), "signal");
}

TEST(Scheduler, RunUntilStopsAtBoundary) {
  Simulation sim;
  Clock clk(sim, "clk", Time::ns(10));
  sim.run_until(Time::ns(105));
  EXPECT_EQ(clk.posedge_count(), 10u);
  EXPECT_FALSE(sim.finished());
  sim.run_until(Time::ns(205));
  EXPECT_EQ(clk.posedge_count(), 20u);
}

TEST(Scheduler, StatsAccumulate) {
  Simulation sim;
  Clock clk(sim, "clk", Time::ns(10));
  sim.run_until(Time::ns(100));
  const auto& st = sim.stats();
  EXPECT_GT(st.delta_cycles, 0u);
  EXPECT_GT(st.process_activations, 0u);
  EXPECT_GT(st.signal_updates, 0u);
}

TEST(Scheduler, ClockedThreadViaStaticSensitivity) {
  Simulation sim;
  Clock clk(sim, "clk", Time::ns(10));
  int cycles = 0;

  class M : public Module {
   public:
    M(Simulation& sim, Clock& clk, int& cycles) : Module(sim, "m") {
      thread("main", [this, &cycles] {
        while (true) {
          wait();  // next posedge
          ++cycles;
        }
      }).sensitive(clk.posedge_event());
    }
  } m(sim, clk, cycles);

  sim.run_until(Time::ns(100));
  EXPECT_EQ(cycles, 10);
}

TEST(Scheduler, WaitWithoutSensitivityThrows) {
  Simulation sim;
  bool threw = false;
  class M : public Module {
   public:
    M(Simulation& sim, bool& threw) : Module(sim, "m") {
      thread("t", [this, &threw] {
        try {
          wait();
        } catch (const std::logic_error&) {
          threw = true;
        }
      });
    }
  } m(sim, threw);
  sim.run();
  EXPECT_TRUE(threw);
}

// Interface-method-call through a hierarchical channel: a blocking FIFO
// channel in the style the paper's SystemC-2.0 refinement step uses.
template <class T>
class FifoReadIF {
 public:
  virtual ~FifoReadIF() = default;
  virtual T read_blocking() = 0;
};
template <class T>
class FifoWriteIF {
 public:
  virtual ~FifoWriteIF() = default;
  virtual void write_blocking(const T& v) = 0;
};

template <class T>
class FifoChannel : public Module, public FifoReadIF<T>, public FifoWriteIF<T> {
 public:
  FifoChannel(Simulation& sim, std::string name, std::size_t capacity)
      : Module(sim, std::move(name)), capacity_(capacity),
        wr_event_(sim, "wr"), rd_event_(sim, "rd") {}

  T read_blocking() override {
    while (buf_.empty()) wait(wr_event_);
    T v = buf_.front();
    buf_.erase(buf_.begin());
    rd_event_.notify();
    return v;
  }
  void write_blocking(const T& v) override {
    while (buf_.size() >= capacity_) wait(rd_event_);
    buf_.push_back(v);
    wr_event_.notify();
  }

 private:
  std::size_t capacity_;
  std::vector<T> buf_;
  Event wr_event_, rd_event_;
};

TEST(Channels, BlockingFifoThroughIMC) {
  Simulation sim;
  FifoChannel<int> fifo(sim, "fifo", 2);
  std::vector<int> got;

  class Producer : public Module {
   public:
    Producer(Simulation& sim, FifoWriteIF<int>& w) : Module(sim, "prod"), port(sim, this, "out") {
      port.bind(w);
      thread("t", [this] {
        for (int i = 0; i < 10; ++i) {
          port->write_blocking(i);
          wait(Time::ns(1));
        }
      });
    }
    Port<FifoWriteIF<int>> port;
  } prod(sim, fifo);

  class Consumer : public Module {
   public:
    Consumer(Simulation& sim, FifoReadIF<int>& r, std::vector<int>& got)
        : Module(sim, "cons"), port(sim, this, "in") {
      port.bind(r);
      thread("t", [this, &got] {
        for (int i = 0; i < 10; ++i) {
          got.push_back(port->read_blocking());
          wait(Time::ns(3));  // slower than producer: exercises back-pressure
        }
      });
    }
    Port<FifoReadIF<int>> port;
  } cons(sim, fifo, got);

  sim.run();
  ASSERT_EQ(got.size(), 10u);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(got[i], i);
}

// --- instrumentation-counter semantics -----------------------------------
//
// A hand-built two-process design with fully known event counts: a thread
// driving a signal N times on a fixed period and a method observing every
// value change.  This pins down what each SimulationStats field means.
class TwoProcess : public Module {
 public:
  static constexpr int kWrites = 3;
  TwoProcess(Simulation& sim, Signal<int>& s, int& observations)
      : Module(sim, "two") {
    thread("driver", [this, &s] {
      for (int i = 0; i < kWrites; ++i) {
        s.write(i + 1);
        wait(Time::ns(1));
      }
    });
    method("observer", [&observations] { ++observations; })
        .sensitive(s.value_changed_event());
  }
};

TEST(InstrumentationCounters, TwoProcessDesignHasKnownCounts) {
  Simulation sim;
  Signal<int> s(sim, nullptr, "s", 0);
  int observations = 0;
  TwoProcess top(sim, s, observations);
  sim.run();

  const auto& st = sim.stats();
  // Driver: init run + (kWrites - 1) timed wake-ups + final wake-up to
  // fall off the end = kWrites + 1 activations.  Observer: init run +
  // kWrites value changes.
  const std::uint64_t driver_acts = TwoProcess::kWrites + 1;
  const std::uint64_t observer_acts = TwoProcess::kWrites + 1;
  EXPECT_EQ(observations, TwoProcess::kWrites + 1);
  EXPECT_EQ(st.process_activations, driver_acts + observer_acts);
  // Only the method process counts as a method invocation.
  EXPECT_EQ(st.method_invocations, observer_acts);
  // Every thread activation costs a switch in and a switch out — except
  // the terminating one, which returns to the scheduler via uc_link.
  EXPECT_EQ(st.context_switches, 2 * driver_acts - 1);
  EXPECT_EQ(st.signal_updates, static_cast<std::uint64_t>(TwoProcess::kWrites));
  EXPECT_GE(st.delta_cycles, static_cast<std::uint64_t>(TwoProcess::kWrites));
  // One value-changed notification and firing per effective write.
  EXPECT_EQ(st.events_notified, static_cast<std::uint64_t>(TwoProcess::kWrites));
  EXPECT_EQ(st.events_fired, static_cast<std::uint64_t>(TwoProcess::kWrites));

  // Per-process attribution sums to the simulation-wide total.
  std::uint64_t sum = 0;
  bool saw_driver = false, saw_observer = false;
  for (const auto& [name, n] : sim.process_activations()) {
    sum += n;
    if (name == "two.driver") { saw_driver = true; EXPECT_EQ(n, driver_acts); }
    if (name == "two.observer") { saw_observer = true; EXPECT_EQ(n, observer_acts); }
  }
  EXPECT_TRUE(saw_driver);
  EXPECT_TRUE(saw_observer);
  EXPECT_EQ(sum, st.process_activations);
}

TEST(InstrumentationCounters, DisabledInstrumentationKeepsBehaviour) {
  auto run_one = [](bool instrumented, SimulationStats& stats_out) {
    Simulation sim;
    sim.set_instrumentation(instrumented);
    Signal<int> s(sim, nullptr, "s", 0);
    int observations = 0;
    TwoProcess top(sim, s, observations);
    sim.run();
    stats_out = sim.stats();
    return observations;
  };
  SimulationStats on{}, off{};
  const int obs_on = run_one(true, on);
  const int obs_off = run_one(false, off);
  // Identical functional behaviour...
  EXPECT_EQ(obs_on, obs_off);
  EXPECT_GT(on.process_activations, 0u);
  // ...but with instrumentation off every counter stays zero.
  EXPECT_EQ(off.process_activations, 0u);
  EXPECT_EQ(off.context_switches, 0u);
  EXPECT_EQ(off.method_invocations, 0u);
  EXPECT_EQ(off.delta_cycles, 0u);
  EXPECT_EQ(off.signal_updates, 0u);
  EXPECT_EQ(off.events_notified, 0u);
  EXPECT_EQ(off.events_fired, 0u);
}

TEST(InstrumentationCounters, RecordStatsMapsEveryField) {
  Simulation sim;
  Signal<int> s(sim, nullptr, "s", 0);
  int observations = 0;
  TwoProcess top(sim, s, observations);
  sim.run();

  scflow::obs::Registry reg;
  record_stats(reg, "k", sim.stats());
  EXPECT_EQ(reg.counter("k.activations"), sim.stats().process_activations);
  EXPECT_EQ(reg.counter("k.context_switches"), sim.stats().context_switches);
  EXPECT_EQ(reg.counter("k.method_invocations"), sim.stats().method_invocations);
  EXPECT_EQ(reg.counter("k.delta_cycles"), sim.stats().delta_cycles);
  EXPECT_EQ(reg.counter("k.timed_steps"), sim.stats().timed_steps);
  EXPECT_EQ(reg.counter("k.signal_updates"), sim.stats().signal_updates);
  EXPECT_EQ(reg.counter("k.events_notified"), sim.stats().events_notified);
  EXPECT_EQ(reg.counter("k.events_fired"), sim.stats().events_fired);
}

TEST(Scheduler, DeltaLimitCatchesOscillation) {
  Simulation sim;
  sim.set_max_delta_cycles(100);
  Signal<bool> a(sim, nullptr, "a", false);

  class M : public Module {
   public:
    M(Simulation& sim, Signal<bool>& a) : Module(sim, "m") {
      // A zero-delay ring oscillator (inverter feeding itself) never
      // settles: each delta toggles the signal again.
      method("inv", [&a] { a.write(!a.read()); }).sensitive(a.value_changed_event());
    }
  } m(sim, a);

  EXPECT_THROW(sim.run(), std::runtime_error);
}

}  // namespace
}  // namespace minisc
