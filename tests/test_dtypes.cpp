// Unit and property tests for the bit-accurate datatypes.
#include <gtest/gtest.h>

#include <cstdint>
#include <random>

#include "dtypes/bit_int.hpp"
#include "dtypes/fixed.hpp"
#include "dtypes/logic.hpp"

namespace scflow {
namespace {

TEST(BitMask, Values) {
  EXPECT_EQ(bit_mask(1), 1u);
  EXPECT_EQ(bit_mask(8), 0xffu);
  EXPECT_EQ(bit_mask(63), 0x7fffffffffffffffull);
  EXPECT_EQ(bit_mask(64), ~0ull);
}

TEST(SignExtend, Basics) {
  EXPECT_EQ(sign_extend(0xff, 8), -1);
  EXPECT_EQ(sign_extend(0x7f, 8), 127);
  EXPECT_EQ(sign_extend(0x80, 8), -128);
  EXPECT_EQ(sign_extend(0x1, 1), -1);
  EXPECT_EQ(sign_extend(0x0, 1), 0);
}

TEST(BitInt, WrapsOnConstruction) {
  EXPECT_EQ(Int<8>(127).to_int64(), 127);
  EXPECT_EQ(Int<8>(128).to_int64(), -128);
  EXPECT_EQ(Int<8>(-129).to_int64(), 127);
  EXPECT_EQ(UInt<8>(256).to_int64(), 0);
  EXPECT_EQ(UInt<8>(-1).to_int64(), 255);
}

TEST(BitInt, ArithmeticWraps) {
  EXPECT_EQ((Int<8>(100) + Int<8>(100)).to_int64(), -56);
  EXPECT_EQ((UInt<8>(200) + UInt<8>(100)).to_int64(), 44);
  EXPECT_EQ((Int<8>(-128) - Int<8>(1)).to_int64(), 127);
  EXPECT_EQ((Int<16>(300) * Int<16>(300)).to_int64(), wrap_to_width(90000, 16, true));
}

TEST(BitInt, ShiftSemantics) {
  EXPECT_EQ((Int<8>(-2) >> 1).to_int64(), -1);   // arithmetic for signed
  EXPECT_EQ((UInt<8>(0xfe) >> 1).to_int64(), 0x7f);  // logical for unsigned
  EXPECT_EQ((UInt<8>(0x81) << 1).to_int64(), 0x02);  // wraps out the top
  EXPECT_EQ((Int<8>(-1) >> 100).to_int64(), -1);
  EXPECT_EQ((UInt<8>(0xff) >> 100).to_int64(), 0);
  EXPECT_EQ((UInt<8>(0xff) << 100).to_int64(), 0);
}

TEST(BitInt, BitAndRangeAccess) {
  UInt<8> v(0b10110010);
  EXPECT_TRUE(v.bit(1));
  EXPECT_FALSE(v.bit(0));
  EXPECT_EQ((v.range(5, 2).to_int64()), 0b1100);
  v.set_bit(0, true);
  EXPECT_EQ(v.to_int64(), 0b10110011);
}

TEST(BitInt, MinMax) {
  EXPECT_EQ(Int<8>::min_value(), -128);
  EXPECT_EQ(Int<8>::max_value(), 127);
  EXPECT_EQ(UInt<8>::max_value(), 255);
  EXPECT_EQ(Int<1>::min_value(), -1);
  EXPECT_EQ(UInt<1>::max_value(), 1);
}

TEST(BitInt, CrossWidthConversion) {
  Int<16> wide(-1234);
  auto narrow = Int<8>::from(wide);
  EXPECT_EQ(narrow.to_int64(), wrap_to_width(-1234, 8, true));
  auto rewide = Int<16>::from(narrow);
  EXPECT_EQ(rewide.to_int64(), narrow.to_int64());
}

// Property sweep: BitInt<W> arithmetic must equal 64-bit arithmetic wrapped
// to W bits, for random operands across widths.
class BitIntProperty : public ::testing::TestWithParam<int> {};

TEST_P(BitIntProperty, MatchesWrappedInt64) {
  const int w = GetParam();
  std::mt19937_64 rng(0xC0FFEE ^ w);
  for (int i = 0; i < 2000; ++i) {
    const auto a = static_cast<std::int64_t>(rng());
    const auto b = static_cast<std::int64_t>(rng());
    const Int<24> dummy(0);
    (void)dummy;
    // Signed: wrapping first must not change the w-bit result (the mod-2^w
    // homomorphism hardware arithmetic relies on).
    {
      const std::int64_t ca = wrap_to_width(a, w, true);
      const std::int64_t cb = wrap_to_width(b, w, true);
      EXPECT_EQ(wrap_to_width(wrapping_add(ca, cb), w, true),
                wrap_to_width(wrapping_add(a, b), w, true));
      EXPECT_EQ(wrap_to_width(wrapping_mul(ca, cb), w, true),
                wrap_to_width(wrapping_mul(a, b), w, true));
    }
    // Unsigned wrap matches masking.
    {
      const std::uint64_t ua = static_cast<std::uint64_t>(a) & bit_mask(w);
      const std::uint64_t ub = static_cast<std::uint64_t>(b) & bit_mask(w);
      EXPECT_EQ(static_cast<std::uint64_t>(wrap_to_width(
                    static_cast<std::int64_t>(ua + ub), w, false)),
                (ua + ub) & bit_mask(w));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, BitIntProperty, ::testing::Values(1, 2, 7, 8, 15, 16, 17, 24, 31, 32, 40, 48, 63));

// A compile-time-width property check on the actual BitInt operators.
template <int W>
void check_bitint_ops(std::mt19937_64& rng) {
  for (int i = 0; i < 500; ++i) {
    const auto a = static_cast<std::int64_t>(rng());
    const auto b = static_cast<std::int64_t>(rng());
    Int<W> x(a), y(b);
    EXPECT_EQ((x + y).to_int64(), wrap_to_width(wrapping_add(x.to_int64(), y.to_int64()), W, true));
    EXPECT_EQ((x - y).to_int64(), wrap_to_width(wrapping_sub(x.to_int64(), y.to_int64()), W, true));
    EXPECT_EQ((x * y).to_int64(), wrap_to_width(wrapping_mul(x.to_int64(), y.to_int64()), W, true));
    EXPECT_EQ((x & y).to_int64(), wrap_to_width(x.to_int64() & y.to_int64(), W, true));
    EXPECT_EQ((x | y).to_int64(), wrap_to_width(x.to_int64() | y.to_int64(), W, true));
    EXPECT_EQ((x ^ y).to_int64(), wrap_to_width(x.to_int64() ^ y.to_int64(), W, true));
    EXPECT_EQ((-x).to_int64(), wrap_to_width(wrapping_neg(x.to_int64()), W, true));
    EXPECT_EQ((~x).to_int64(), wrap_to_width(~x.to_int64(), W, true));
  }
}

TEST(BitIntPropertyTemplated, OperatorsMatchReference) {
  std::mt19937_64 rng(42);
  check_bitint_ops<5>(rng);
  check_bitint_ops<16>(rng);
  check_bitint_ops<24>(rng);
  check_bitint_ops<40>(rng);
  check_bitint_ops<56>(rng);
}

TEST(SaturateToWidth, Basics) {
  EXPECT_EQ(saturate_to_width(1000, 8, true), 127);
  EXPECT_EQ(saturate_to_width(-1000, 8, true), -128);
  EXPECT_EQ(saturate_to_width(50, 8, true), 50);
  EXPECT_EQ(saturate_to_width(-1, 8, false), 0);
  EXPECT_EQ(saturate_to_width(300, 8, false), 255);
}

TEST(BitsForUnsigned, Basics) {
  EXPECT_EQ(bits_for_unsigned(0), 1);
  EXPECT_EQ(bits_for_unsigned(1), 1);
  EXPECT_EQ(bits_for_unsigned(2), 2);
  EXPECT_EQ(bits_for_unsigned(255), 8);
  EXPECT_EQ(bits_for_unsigned(256), 9);
}

TEST(Fixed, QuantisationRoundtrip) {
  using Q15 = Fixed<16, 15>;
  const Q15 half = Q15::from_double(0.5);
  EXPECT_EQ(half.raw().to_int64(), 16384);
  EXPECT_DOUBLE_EQ(half.to_double(), 0.5);
  const Q15 minus1 = Q15::from_double(-1.0);
  EXPECT_EQ(minus1.raw().to_int64(), -32768);
}

TEST(Fixed, SaturatesAtFullScale) {
  using Q15 = Fixed<16, 15>;
  const Q15 v = Q15::from_double(1.0);  // +1.0 is not representable
  EXPECT_EQ(v.raw().to_int64(), 32767);
  const Q15 w = Q15::from_double(-4.0);
  EXPECT_EQ(w.raw().to_int64(), -32768);
}

TEST(Fixed, MultiplyTruncates) {
  using Q15 = Fixed<16, 15>;
  const Q15 a = Q15::from_double(0.5);
  const Q15 b = Q15::from_double(0.25);
  EXPECT_NEAR((a * b).to_double(), 0.125, 1e-4);
}

TEST(Fixed, AddSub) {
  using Q8 = Fixed<16, 8>;
  const Q8 a = Q8::from_double(1.5);
  const Q8 b = Q8::from_double(2.25);
  EXPECT_DOUBLE_EQ((a + b).to_double(), 3.75);
  EXPECT_DOUBLE_EQ((a - b).to_double(), -0.75);
}

TEST(Logic, NotTable) {
  EXPECT_EQ(logic_not(Logic::L0), Logic::L1);
  EXPECT_EQ(logic_not(Logic::L1), Logic::L0);
  EXPECT_EQ(logic_not(Logic::X), Logic::X);
  EXPECT_EQ(logic_not(Logic::Z), Logic::X);
}

TEST(Logic, AndOrShortCircuitDominance) {
  // 0 dominates AND even against X/Z; 1 dominates OR.
  for (Logic v : {Logic::L0, Logic::L1, Logic::X, Logic::Z}) {
    EXPECT_EQ(logic_and(Logic::L0, v), Logic::L0);
    EXPECT_EQ(logic_and(v, Logic::L0), Logic::L0);
    EXPECT_EQ(logic_or(Logic::L1, v), Logic::L1);
    EXPECT_EQ(logic_or(v, Logic::L1), Logic::L1);
  }
  EXPECT_EQ(logic_and(Logic::L1, Logic::X), Logic::X);
  EXPECT_EQ(logic_or(Logic::L0, Logic::X), Logic::X);
}

TEST(Logic, XorPropagatesUnknown) {
  EXPECT_EQ(logic_xor(Logic::L1, Logic::L1), Logic::L0);
  EXPECT_EQ(logic_xor(Logic::L1, Logic::L0), Logic::L1);
  EXPECT_EQ(logic_xor(Logic::X, Logic::L0), Logic::X);
  EXPECT_EQ(logic_xor(Logic::Z, Logic::L1), Logic::X);
}

TEST(Logic, MuxPessimism) {
  EXPECT_EQ(logic_mux(Logic::L0, Logic::L1, Logic::L0), Logic::L1);
  EXPECT_EQ(logic_mux(Logic::L1, Logic::L1, Logic::L0), Logic::L0);
  EXPECT_EQ(logic_mux(Logic::X, Logic::L1, Logic::L0), Logic::X);
  EXPECT_EQ(logic_mux(Logic::X, Logic::L1, Logic::L1), Logic::L1);  // agreeing inputs
}

TEST(Logic, Resolution) {
  EXPECT_EQ(logic_resolve(Logic::Z, Logic::L1), Logic::L1);
  EXPECT_EQ(logic_resolve(Logic::L0, Logic::Z), Logic::L0);
  EXPECT_EQ(logic_resolve(Logic::L0, Logic::L1), Logic::X);
  EXPECT_EQ(logic_resolve(Logic::Z, Logic::Z), Logic::Z);
}

TEST(LogicVector, UintRoundtrip) {
  const auto v = LogicVector::from_uint(0xa5, 8);
  EXPECT_TRUE(v.is_fully_defined());
  EXPECT_EQ(v.to_uint(), 0xa5u);
  EXPECT_EQ(v.to_string(), "10100101");
}

TEST(LogicVector, StringRoundtrip) {
  const auto v = LogicVector::from_string("1x0z");
  EXPECT_FALSE(v.is_fully_defined());
  EXPECT_EQ(v.to_string(), "1x0z");
  EXPECT_EQ(v.at(0), Logic::Z);  // LSB is last char
  EXPECT_EQ(v.at(3), Logic::L1);
}

}  // namespace
}  // namespace scflow
