// Differential determinism harness for the parallel gate-level engine:
// the levelized worker-pool sweep and the sharded batch runner must be
// *invisible* — for any thread count, every output trace, every counter
// and every RAM-violation record must be bit-identical to the sequential
// engine.  These tests pin that contract (and the peak_queue_depth
// semantics under sharding) on random soups, a hand-built wide netlist
// that provably takes the parallel dispatch path, and the synthesised SRC
// design.  Run them under -DSCFLOW_SANITIZE=thread to turn the same
// assertions into a race hunt.
#include <gtest/gtest.h>

#include <random>
#include <string>
#include <vector>

#include "dsp/stimulus.hpp"
#include "hdlsim/batch_runner.hpp"
#include "hdlsim/gate_sim.hpp"
#include "hdlsim/src_gate_sim.hpp"
#include "netlist/lower.hpp"
#include "netlist/opt.hpp"
#include "obs/session.hpp"
#include "rtl/passes.hpp"
#include "rtl/src_design.hpp"

namespace scflow::hdlsim {
namespace {

using dsp::SrcMode;
using P = dsp::SrcParams;

/// Random structural netlist, biased *wide*: enough cells that several
/// levels span multiple 64-unit dirty words, so the sweep has something
/// to partition.  Acyclic by construction except flop feedback.
nl::Netlist random_wide_netlist(std::mt19937_64& rng) {
  auto rnd = [&rng](int lo, int hi) {
    return lo + static_cast<int>(rng() % static_cast<std::uint64_t>(hi - lo + 1));
  };
  nl::Netlist n("parfuzz");
  std::vector<nl::NetId> pool;

  const int n_inputs = rnd(2, 4);
  for (int i = 0; i < n_inputs; ++i) {
    std::vector<nl::NetId> nets;
    const int w = rnd(4, 16);
    for (int b = 0; b < w; ++b) nets.push_back(n.new_net());
    pool.insert(pool.end(), nets.begin(), nets.end());
    n.add_input("in" + std::to_string(i), std::move(nets));
  }
  pool.push_back(n.const_net(false));
  pool.push_back(n.const_net(true));

  auto pick = [&]() {
    return pool[static_cast<std::size_t>(rnd(0, static_cast<int>(pool.size()) - 1))];
  };

  std::vector<std::size_t> flop_cells;
  const int n_flops = rnd(2, 16);
  for (int f = 0; f < n_flops; ++f) {
    flop_cells.push_back(n.cells().size());
    pool.push_back(n.add_cell(nl::CellType::kDff, {pick()}, static_cast<int>(rng() & 1)));
  }

  static constexpr nl::CellType kComb[] = {
      nl::CellType::kBuf,  nl::CellType::kInv,   nl::CellType::kAnd2,
      nl::CellType::kOr2,  nl::CellType::kNand2, nl::CellType::kNor2,
      nl::CellType::kXor2, nl::CellType::kXnor2, nl::CellType::kMux2,
  };
  const int n_cells = rnd(300, 700);
  for (int i = 0; i < n_cells; ++i) {
    const nl::CellType t = kComb[static_cast<std::size_t>(rnd(0, 8))];
    std::vector<nl::NetId> ins;
    for (int k = 0; k < nl::cell_input_count(t); ++k) ins.push_back(pick());
    pool.push_back(n.add_cell(t, std::move(ins)));
  }
  for (const std::size_t ci : flop_cells)
    for (nl::NetId& in : n.cells_mut()[ci].inputs) in = pick();

  const int n_outs = rnd(2, 4);
  for (int o = 0; o < n_outs; ++o) {
    std::vector<nl::NetId> nets;
    const int w = rnd(2, 8);
    for (int b = 0; b < w; ++b) nets.push_back(pick());
    n.add_output("out" + std::to_string(o), std::move(nets));
  }
  return n;
}

LogicVector random_logic_vector(std::mt19937_64& rng, std::size_t width, bool allow_xz) {
  LogicVector v(width);
  for (std::size_t i = 0; i < width; ++i) {
    const auto r = rng() % 8;
    Logic b = logic_from_bool((r & 1) != 0);
    if (allow_xz && r == 6) b = Logic::X;
    if (allow_xz && r == 7) b = Logic::Z;
    v.set(i, b);
  }
  return v;
}

/// One full run: per-cycle four-valued output trace, plus the final
/// counters and per-lane shards.  The stimulus stream depends only on
/// @p stim_seed, so runs with different thread counts see identical input.
struct RunTrace {
  std::vector<std::string> trace;
  SimCounters counters;
  std::vector<WorkerShardStats> shards;
  unsigned lanes = 0;
};

RunTrace run_trace(const nl::Netlist& n, unsigned threads, unsigned stim_seed) {
  std::mt19937_64 rng(stim_seed);
  GateSim::Options opts;
  opts.threads = threads;
  GateSim sim(n, opts);
  RunTrace rt;
  rt.lanes = sim.threads();
  for (int cycle = 0; cycle < 16; ++cycle) {
    for (const auto& in : n.inputs())
      sim.set_input_logic(in.name, random_logic_vector(rng, in.nets.size(), cycle > 2));
    sim.settle();
    std::string snap;
    for (const auto& out : n.outputs()) {
      snap += sim.output_bits(out.name).to_string();
      snap += '|';
    }
    rt.trace.push_back(std::move(snap));
    sim.step();
  }
  rt.counters = sim.counters();
  rt.shards = sim.worker_stats();
  return rt;
}

void expect_same_counters(const SimCounters& a, const SimCounters& b, const std::string& ctx) {
  EXPECT_EQ(a.evaluations, b.evaluations) << ctx;
  EXPECT_EQ(a.dirty_pushes, b.dirty_pushes) << ctx;
  EXPECT_EQ(a.settle_calls, b.settle_calls) << ctx;
  EXPECT_EQ(a.settle_passes, b.settle_passes) << ctx;
  EXPECT_EQ(a.ram_rereads, b.ram_rereads) << ctx;
  EXPECT_EQ(a.peak_queue_depth, b.peak_queue_depth) << ctx;
  EXPECT_EQ(a.steady_state_allocs, b.steady_state_allocs) << ctx;
}

class ParallelDeterminism : public ::testing::TestWithParam<int> {};

TEST_P(ParallelDeterminism, BitIdenticalAcrossThreadCounts) {
  const auto seed = 0xBEEF0000u + static_cast<unsigned>(GetParam());
  std::mt19937_64 rng(seed);
  const nl::Netlist n = random_wide_netlist(rng);
  const unsigned stim_seed = seed ^ 0x57117u;

  const RunTrace ref = run_trace(n, 1, stim_seed);
  ASSERT_EQ(ref.lanes, 1u);
  EXPECT_EQ(ref.counters.steady_state_allocs, 0u);
  for (const unsigned threads : {2u, 4u, 8u}) {
    const RunTrace got = run_trace(n, threads, stim_seed);
    const std::string ctx = "seed " + std::to_string(seed) + " threads " + std::to_string(threads);
    ASSERT_EQ(got.lanes, threads) << ctx;
    ASSERT_EQ(got.trace, ref.trace) << ctx;
    expect_same_counters(got.counters, ref.counters, ctx);
    // Shard sums must reproduce the totals exactly: every eval and every
    // fresh push is owned by exactly one lane.
    std::uint64_t evals = 0, pushes = 0;
    ASSERT_EQ(got.shards.size(), threads) << ctx;
    for (const WorkerShardStats& s : got.shards) {
      evals += s.evaluations;
      pushes += s.dirty_pushes;
    }
    EXPECT_EQ(evals, got.counters.evaluations) << ctx;
    EXPECT_EQ(pushes, got.counters.dirty_pushes) << ctx;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParallelDeterminism, ::testing::Range(0, 6));

TEST(ParallelDeterminism, WideSingleLevelTakesTheParallelPathAndPinsCounters) {
  // 1200 inverters off one input: a single level of 19 dirty words, which
  // with 8 lanes clears the (>= 2 * lanes) parallel-dispatch threshold.
  // Counter values are hand-predictable, which pins the peak_queue_depth
  // semantics under sharding: the high-water mark is sampled per external
  // mark batch and per level, never per shard.
  constexpr unsigned kInvs = 1200;
  nl::Netlist n("wide");
  const nl::NetId a = n.new_net();
  n.add_input("a", {a});
  std::vector<nl::NetId> outs;
  for (unsigned i = 0; i < kInvs; ++i) outs.push_back(n.add_cell(nl::CellType::kInv, {a}));
  n.add_output("out", {outs[0], outs[kInvs / 2], outs[kInvs - 1]});

  auto run = [&](unsigned threads) {
    GateSim::Options opts;
    opts.threads = threads;
    GateSim sim(n, opts);
    EXPECT_EQ(sim.counters().dirty_pushes, kInvs);        // construction marks all
    EXPECT_EQ(sim.counters().peak_queue_depth, kInvs);    // batch sample
    sim.set_input("a", 0);
    sim.settle();
    EXPECT_EQ(sim.counters().evaluations, kInvs);
    sim.set_input("a", 1);  // re-marks every inverter
    sim.settle();
    EXPECT_EQ(sim.counters().evaluations, 2 * kInvs);
    EXPECT_EQ(sim.counters().dirty_pushes, 2 * kInvs);
    EXPECT_EQ(sim.counters().peak_queue_depth, kInvs);
    EXPECT_EQ(sim.counters().steady_state_allocs, 0u);
    EXPECT_EQ(sim.output("out"), 0u);
    return sim.worker_stats();
  };

  const auto seq = run(1);
  ASSERT_EQ(seq.size(), 1u);
  EXPECT_EQ(seq[0].evaluations, 2 * kInvs);

  const auto par = run(8);
  ASSERT_EQ(par.size(), 8u);
  unsigned busy = 0;
  std::uint64_t evals = 0;
  for (const auto& s : par) {
    busy += s.evaluations > 0 ? 1 : 0;
    evals += s.evaluations;
  }
  EXPECT_EQ(evals, 2 * kInvs);
  // 19 words in chunks of ceil(19/8)=3 puts real work on 7 of 8 lanes —
  // the parallel dispatch demonstrably ran, and ran deterministically.
  EXPECT_GE(busy, 2u);
}

nl::Netlist synthesise_src() {
  rtl::PassOptions popt;
  const rtl::Design optimised = rtl::run_passes(rtl::build_src_design(rtl::rtl_opt_config()), popt);
  nl::Netlist gates = nl::lower_to_gates(optimised, {});
  gates = nl::optimize_gates(gates);
  return gates;
}

std::vector<dsp::SrcEvent> schedule(SrcMode mode, std::size_t samples, std::uint64_t seed) {
  const auto inputs = dsp::make_noise_stimulus(samples, seed);
  return dsp::make_schedule(inputs, P::input_period_ps(mode), samples, P::output_period_ps(mode));
}

TEST(ParallelDeterminism, SynthesisedSrcNetlistMatchesSequential) {
  const nl::Netlist gates = synthesise_src();
  const auto ev = schedule(SrcMode::k48To48, 25, 21);
  GateSim::Options opts;
  const auto ref = run_src_netlist(gates, SrcMode::k48To48, ev, opts);
  opts.threads = 4;
  const auto got = run_src_netlist(gates, SrcMode::k48To48, ev, opts);
  ASSERT_EQ(got.outputs.size(), ref.outputs.size());
  for (std::size_t i = 0; i < ref.outputs.size(); ++i)
    ASSERT_EQ(got.outputs[i], ref.outputs[i]) << "output " << i;
  EXPECT_EQ(got.cycles, ref.cycles);
  EXPECT_EQ(got.ram_violations.count, ref.ram_violations.count);
  expect_same_counters(got.counters, ref.counters, "src threads=4");
}

TEST(BatchRunner, ShardedBatchMatchesSequentialJobs) {
  const nl::Netlist gates = synthesise_src();
  std::vector<std::vector<dsp::SrcEvent>> schedules;
  for (std::uint64_t s = 0; s < 5; ++s)
    schedules.push_back(schedule(SrcMode::k48To48, 15 + 3 * s, 100 + s));

  GateSim::Options opts;
  obs::Session session;
  const auto batch = run_src_netlist_batch(gates, SrcMode::k48To48, schedules, opts, 4, &session);
  ASSERT_EQ(batch.size(), schedules.size());
  for (std::size_t j = 0; j < schedules.size(); ++j) {
    const auto ref = run_src_netlist(gates, SrcMode::k48To48, schedules[j], opts);
    ASSERT_EQ(batch[j].outputs.size(), ref.outputs.size()) << "job " << j;
    for (std::size_t i = 0; i < ref.outputs.size(); ++i)
      ASSERT_EQ(batch[j].outputs[i], ref.outputs[i]) << "job " << j << " output " << i;
    expect_same_counters(batch[j].counters, ref.counters, "job " + std::to_string(j));
  }
  // The session captured the batch shape: one slice per job, lane + job
  // counters summing to the batch size.
  EXPECT_EQ(session.trace.event_count(), schedules.size());
  EXPECT_EQ(session.registry.counter("gate_batch.jobs"), schedules.size());
  EXPECT_EQ(session.registry.counter("gate_batch.lanes"), 4u);
  std::uint64_t lane_jobs = 0;
  for (unsigned l = 0; l < 4; ++l)
    lane_jobs += session.registry.counter("gate_batch.lane" + std::to_string(l) + ".jobs");
  EXPECT_EQ(lane_jobs, schedules.size());
}

TEST(WorkerShardStats, RecordIntoEmitsPerLaneCounters) {
  obs::Session session;
  WorkerShardStats s;
  s.evaluations = 10;
  s.dirty_pushes = 7;
  s.level_sweeps = 3;
  s.record_into(session.registry, "gate.worker1");
  EXPECT_EQ(session.registry.counter("gate.worker1.evaluations"), 10u);
  EXPECT_EQ(session.registry.counter("gate.worker1.dirty_pushes"), 7u);
  EXPECT_EQ(session.registry.counter("gate.worker1.level_sweeps"), 3u);
}

TEST(BatchRunner, JobContextDeadlineExpiresAndMarksTimedOut) {
  BatchRunner runner(1);
  runner.set_job_budget_ns(1);  // expires essentially immediately
  bool saw_expired = false;
  runner.run(1, [&](std::size_t, unsigned, const BatchRunner::JobContext& ctx) {
    volatile std::uint64_t burn = 0;
    for (int i = 0; i < 200000; ++i) burn = burn + static_cast<std::uint64_t>(i);
    saw_expired = ctx.expired();
  });
  EXPECT_TRUE(saw_expired);
  ASSERT_EQ(runner.job_stats().size(), 1u);
  EXPECT_TRUE(runner.job_stats()[0].timed_out);
}

TEST(BatchRunner, ZeroBudgetNeverExpires) {
  BatchRunner runner(1);
  ASSERT_EQ(runner.job_budget_ns(), 0u);
  bool saw_expired = true;
  runner.run(1, [&](std::size_t, unsigned, const BatchRunner::JobContext& ctx) {
    saw_expired = ctx.expired();
    EXPECT_EQ(ctx.deadline_ns, 0u);
  });
  EXPECT_FALSE(saw_expired);
  EXPECT_FALSE(runner.job_stats()[0].timed_out);
}

TEST(BatchRunner, TimedOutJobIsSkippedNotKilled) {
  // A job with an absurdly long schedule must degrade gracefully: the
  // cooperative deadline stops it early (timed_out set, partial cycle
  // count), the batch still completes, and no other job is disturbed.
  const nl::Netlist gates = synthesise_src();
  std::vector<std::vector<dsp::SrcEvent>> schedules;
  schedules.push_back(schedule(SrcMode::k48To48, 30000, 7));  // tens of seconds
  schedules.push_back(schedule(SrcMode::k48To48, 3, 8));
  GateSim::Options opts;
  // Wide margins on both sides so the split survives sanitizer slowdown
  // and single-core lane contention: the long job needs tens of seconds,
  // the short one a few ms.
  constexpr std::uint64_t kBudgetNs = 500'000'000;  // 500 ms
  const auto batch =
      run_src_netlist_batch(gates, SrcMode::k48To48, schedules, opts, 2, nullptr, kBudgetNs);
  ASSERT_EQ(batch.size(), 2u);
  EXPECT_TRUE(batch[0].timed_out);
  EXPECT_GT(batch[0].cycles, 0u);
  // The short job ran to completion and matches an unbudgeted reference.
  EXPECT_FALSE(batch[1].timed_out);
  const auto ref = run_src_netlist(gates, SrcMode::k48To48, schedules[1], opts);
  ASSERT_EQ(batch[1].outputs.size(), ref.outputs.size());
  for (std::size_t i = 0; i < ref.outputs.size(); ++i)
    ASSERT_EQ(batch[1].outputs[i], ref.outputs[i]) << "output " << i;
}

TEST(BatchRunner, DynamicClaimingCoversEveryJobOnce) {
  BatchRunner runner(3);
  EXPECT_EQ(runner.lanes(), 3u);
  std::vector<int> hits(17, 0);
  runner.run(hits.size(), [&](std::size_t job, unsigned) { ++hits[job]; });
  for (std::size_t j = 0; j < hits.size(); ++j) EXPECT_EQ(hits[j], 1) << "job " << j;
  ASSERT_EQ(runner.job_stats().size(), hits.size());
  for (const auto& st : runner.job_stats()) {
    EXPECT_LE(st.start_ns, st.end_ns);
    EXPECT_LT(st.lane, 3u);
  }
}

}  // namespace
}  // namespace scflow::hdlsim
