// The PPSFP bit-parallel fault engine, proven equivalent to the
// event-driven reference:
//
//  * CompiledSim's per-lane stuck-at overlay against GateSim::inject_stuck,
//    lane by lane on the same stimulus (the write-side clamp semantics);
//  * the campaign-level differential oracle on random netlists x random
//    scan programs x thread counts {1,2,4,8} (netlist_fuzz.hpp) — every
//    per-fault classification, detecting pattern index, observe port and
//    cycle count must be bit-identical;
//  * the fallback regimes: x_initial_flops programs fall back whole, RAM
//    macro bus faults fall back per fault (and neither path crashes or
//    diverges), with the ppsfp_* accounting visible in the registry;
//  * run-ledger invariance: the strip-timing ledger projection of a
//    campaign must not depend on the engine, so cross-engine scflow_report
//    diffs stay clean for every non-timing metric.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <random>
#include <string>
#include <vector>

#include "dtypes/logic.hpp"
#include "fault/campaign.hpp"
#include "fault/fault.hpp"
#include "hdlsim/compile.hpp"
#include "hdlsim/compiled_sim.hpp"
#include "hdlsim/gate_sim.hpp"
#include "netlist/lower.hpp"
#include "netlist/netlist.hpp"
#include "netlist/opt.hpp"
#include "netlist_fuzz.hpp"
#include "obs/registry.hpp"
#include "obs/session.hpp"
#include "rtl/builder.hpp"

namespace scflow::fault {
namespace {

using Engine = CampaignOptions::Engine;

// A small scan-inserted sequential design with feedback — the same shape
// the ledger thread-sweep test uses, so results here triangulate with it.
nl::Netlist scan_accumulator() {
  rtl::DesignBuilder b("ppsfp_acc");
  auto x = b.input("x", 8);
  auto y = b.input("y", 8);
  auto acc = b.reg("acc", 8, 3);
  b.assign_always(acc, b.add(acc.q, b.and_(x, y)));
  b.output("sum", b.add(x, y));
  b.output("acc", acc.q);
  nl::Netlist g = nl::optimize_gates(nl::lower_to_gates(b.finalise(), {}));
  nl::insert_scan_chain(g);
  return g;
}

// Accumulator plus a RAM macro whose write bus hangs off primary inputs:
// faults on the bus nets must take the event-driven fallback, everything
// else stays on the bit-parallel path (exercising the per-lane macro
// read-port change detection against GateSim's).
nl::Netlist ram_design() {
  rtl::DesignBuilder b("ppsfp_ram");
  auto addr = b.input("addr", 4);
  auto wdata = b.input("wdata", 8);
  auto wen = b.input("wen", 1);
  const int mem = b.memory("ram", 4, 8);
  b.ram_write(mem, addr, wdata, wen);
  auto acc = b.reg("acc", 8, 0);
  auto rd = b.ram_read(mem, addr);
  b.assign_always(acc, b.add(acc.q, rd));
  b.output("rdata", rd);
  b.output("acc", acc.q);
  return nl::lower_to_gates(b.finalise(), {});
}

// --- the overlay itself, lane by lane against inject_stuck --------------

TEST(PpsfpOverlay, MatchesInjectStuckPerLane) {
  const nl::Netlist n = scan_accumulator();
  const hdlsim::CompiledProgram prog = hdlsim::compile_netlist(n);

  std::vector<Fault> faults = enumerate_stuck_faults(n);
  ASSERT_GT(faults.size(), 8u);
  const unsigned lanes =
      static_cast<unsigned>(std::min<std::size_t>(faults.size(), 64));

  hdlsim::CompiledSim cs(n, prog, {});
  std::vector<hdlsim::CompiledSim::LaneFault> overlay;
  for (unsigned l = 0; l < lanes; ++l)
    overlay.push_back({faults[l].net, faults[l].stuck_one, l});
  cs.set_fault_overlay(overlay);

  // One event-driven faulty machine per lane, injected the same way.
  std::vector<std::unique_ptr<hdlsim::GateSim>> gs;
  for (unsigned l = 0; l < lanes; ++l) {
    gs.push_back(std::make_unique<hdlsim::GateSim>(n));
    gs.back()->inject_stuck(faults[l].net,
                            faults[l].stuck_one ? Logic::L1 : Logic::L0);
  }

  std::mt19937_64 rng(0x9e3779b97f4a7c15ull);
  for (int cycle = 0; cycle < 48; ++cycle) {
    for (const nl::PortBits& in : n.inputs()) {
      const std::uint64_t v = rng();
      cs.set_input(&in, v);
      for (auto& g : gs) g->set_input(&in, v);
    }
    cs.step();
    for (auto& g : gs) g->step();
    for (const nl::PortBits& out : n.outputs()) {
      for (unsigned l = 0; l < lanes; ++l) {
        const hdlsim::GateSim::PortSample s = gs[l]->output_sample(&out);
        for (std::size_t b = 0; b < out.nets.size(); ++b) {
          ASSERT_TRUE((s.known >> b) & 1)
              << "lane " << l << " cycle " << cycle << " X at " << out.name;
          EXPECT_EQ((cs.output_word(&out, b) >> l) & 1, (s.value >> b) & 1)
              << describe_fault(n, faults[l]) << " cycle " << cycle << " port "
              << out.name << " bit " << b;
        }
      }
    }
  }
}

TEST(PpsfpOverlay, FourStateModeRejectsOverlay) {
  const nl::Netlist n = scan_accumulator();
  hdlsim::CompiledSim cs(n, {.four_state = true});
  EXPECT_THROW(cs.set_fault_overlay({{0, false, 0}}), std::logic_error);
}

// --- campaign-level differential oracle ---------------------------------

TEST(PpsfpFuzz, MatchesEventDrivenOnRandomNetlists) {
  const std::vector<unsigned> threads = {1, 2, 4, 8};
  for (std::uint64_t seed = 1; seed <= 64; ++seed) {
    std::mt19937_64 rng(seed * 0x2545f4914f6cdd1dull);
    nl::Netlist n = random_gate_netlist(rng);
    // Half the seeds get a real scan chain so the shift/capture program
    // (scan_out observed every shift cycle) is part of the oracle.
    if ((seed & 1) == 0) nl::insert_scan_chain(n);
    const CampaignOptions opt = random_campaign_options(rng);
    const std::string diff = diff_campaign_engines(n, opt, threads);
    EXPECT_EQ(diff, "") << "seed " << seed;
    if (!diff.empty()) break;
  }
}

TEST(PpsfpFuzz, XInitialFlopsFallsBackWholeAndMatches) {
  const std::vector<unsigned> threads = {1, 4};
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    std::mt19937_64 rng(seed * 0xda942042e4dd58b5ull);
    nl::Netlist n = random_gate_netlist(rng);
    if ((seed & 1) == 0) nl::insert_scan_chain(n);
    CampaignOptions opt = random_campaign_options(rng);
    opt.x_initial_flops = true;  // the 4-valued taxonomy must survive
    EXPECT_EQ(diff_campaign_engines(n, opt, threads), "") << "seed " << seed;

    opt.engine = Engine::kPpsfp;
    opt.threads = 1;
    const CampaignResult r = run_campaign(n, opt);
    EXPECT_EQ(r.ppsfp_fallback, r.faults.size()) << "seed " << seed;
    EXPECT_EQ(r.ppsfp_dropped, 0u) << "seed " << seed;
  }
}

// --- fallback regimes on a real RAM macro -------------------------------

TEST(Ppsfp, RamMacroBusFaultsFallBackAndMatch) {
  const nl::Netlist n = ram_design();
  CampaignOptions opt;
  opt.functional_cycles = 32;
  EXPECT_EQ(diff_campaign_engines(n, opt, {1, 2, 4, 8}), "");

  opt.engine = Engine::kPpsfp;
  obs::Session session;
  opt.metric_prefix = "fault.ppsfp_ram";
  const CampaignResult r = run_campaign(n, opt, &session);
  // The write/read bus faults must take the event-driven path...
  EXPECT_GT(r.ppsfp_fallback, 0u);
  // ...but not the whole design: the accumulator cone stays bit-parallel
  // (covering the per-lane macro read-port scatter against GateSim).
  EXPECT_LT(r.ppsfp_fallback, r.faults.size());
  EXPECT_GT(r.detected, 0u);
  EXPECT_EQ(session.registry.counter("fault.ppsfp_ram.ppsfp_fallback_faults"),
            r.ppsfp_fallback);
  EXPECT_EQ(session.registry.counter("fault.ppsfp_ram.ppsfp_dropped"),
            r.ppsfp_dropped);
}

TEST(Ppsfp, DroppedAccountingOnScanDesign) {
  const nl::Netlist n = scan_accumulator();
  CampaignOptions opt;
  opt.engine = Engine::kPpsfp;
  obs::Session session;
  opt.metric_prefix = "fault.ppsfp_acc";
  const CampaignResult r = run_campaign(n, opt, &session);
  // X-free scan design: nothing falls back, every detection is a drop.
  EXPECT_EQ(r.ppsfp_fallback, 0u);
  EXPECT_GT(r.detected, 0u);
  EXPECT_EQ(r.ppsfp_dropped, r.detected);
  // The drop histogram is the fault-dropping evidence: one sample per
  // dropped fault, bucketed by the pattern index that killed it.
  const obs::Histogram* h =
      session.registry.histogram("fault.ppsfp_acc.ppsfp_dropped_at");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count(), r.ppsfp_dropped);
}

TEST(Ppsfp, CycleBudgetParityIsDeterministic) {
  const nl::Netlist n = scan_accumulator();
  CampaignOptions opt;
  opt.cycle_budget = 3;  // shorter than the stimulus program
  EXPECT_EQ(diff_campaign_engines(n, opt, {1, 2, 4, 8}), "");
  opt.engine = Engine::kPpsfp;
  const CampaignResult r = run_campaign(n, opt);
  EXPECT_GT(r.undetected_budget, 0u);
}

// --- ledger invariance ---------------------------------------------------

TEST(Ppsfp, LedgerStripTimingProjectionIsEngineInvariant) {
  const nl::Netlist n = scan_accumulator();
  std::string reference;
  for (const Engine engine : {Engine::kEventDriven, Engine::kPpsfp}) {
    obs::Session session;
    CampaignOptions opt;
    opt.engine = engine;
    const CampaignResult r = run_campaign(n, opt, &session);
    EXPECT_GT(r.detected, 0u);
    ASSERT_EQ(session.ledger.size(), 1u);
    // Identical fingerprints, counters, coverage and per-fault cycle
    // histogram — the engine may only change the timing fields, so a
    // strip-timing scflow_report diff across engines stays clean.
    const std::string img = session.ledger.entries()[0].to_json(/*strip_timing=*/true);
    if (reference.empty())
      reference = img;
    else
      EXPECT_EQ(img, reference);
  }
}

}  // namespace
}  // namespace scflow::fault
