// Randomised cross-layer equivalence: generate random word-level designs
// (expression DAGs + registers + a memory), run the word-level passes and
// the full gate lowering/optimisation, and check that the rtl::Interpreter
// and the 4-value gate simulator agree cycle for cycle on random stimulus.
// This is the synthesis substrate's strongest safety net.
#include <gtest/gtest.h>

#include <random>

#include "dtypes/bit_int.hpp"
#include "hdlsim/gate_sim.hpp"
#include "netlist/lower.hpp"
#include "netlist/opt.hpp"
#include "rtl/builder.hpp"
#include "rtl/interpreter.hpp"
#include "rtl/passes.hpp"

namespace scflow {
namespace {

using rtl::Design;
using rtl::DesignBuilder;
using rtl::Sig;

/// Builds a random design with @p n_ops operations over a few inputs and
/// registers.  All generated constructs stay within the IR's contract
/// (widths 1..48, argument widths matched through resize).
Design random_design(std::mt19937_64& rng, int n_ops) {
  DesignBuilder b("fuzz");
  auto rnd = [&rng](int lo, int hi) {
    return lo + static_cast<int>(rng() % static_cast<std::uint64_t>(hi - lo + 1));
  };

  std::vector<Sig> pool;
  const int n_inputs = rnd(2, 4);
  for (int i = 0; i < n_inputs; ++i)
    pool.push_back(b.input("in" + std::to_string(i), rnd(1, 24)));
  std::vector<rtl::Reg> regs;
  const int n_regs = rnd(1, 3);
  for (int r = 0; r < n_regs; ++r) {
    regs.push_back(b.reg("r" + std::to_string(r), rnd(2, 32),
                         static_cast<std::int64_t>(rng() & 0xff)));
    pool.push_back(regs.back().q);
  }
  pool.push_back(b.c(rnd(1, 32), static_cast<std::int64_t>(rng())));

  auto pick = [&]() { return pool[static_cast<std::size_t>(rnd(0, static_cast<int>(pool.size()) - 1))]; };
  auto pick_w = [&](int w, bool sign) {
    Sig s = pick();
    return sign ? b.resize_s(s, w) : b.resize_u(s, w);
  };

  for (int i = 0; i < n_ops; ++i) {
    const int w = rnd(1, 40);
    Sig out;
    switch (rnd(0, 11)) {
      case 0: out = b.add(pick_w(w, true), pick_w(w, true)); break;
      case 1: out = b.sub(pick_w(w, true), pick_w(w, true)); break;
      case 2: {
        const Sig a = pick_w(rnd(1, 17), true);
        const Sig c = pick_w(rnd(1, 17), true);
        out = b.mul(a, c, std::min(a.width + c.width, 40));
        break;
      }
      case 3: out = b.and_(pick_w(w, false), pick_w(w, false)); break;
      case 4: out = b.or_(pick_w(w, false), pick_w(w, false)); break;
      case 5: out = b.xor_(pick_w(w, false), pick_w(w, false)); break;
      case 6: out = b.not_(pick_w(w, false)); break;
      case 7: out = b.zext(b.mux(b.resize_u(pick(), 1), pick_w(w, false), pick_w(w, false)), w); break;
      case 8: out = b.zext(b.lt_s(pick_w(w, true), pick_w(w, true)), rnd(1, 4)); break;
      case 9: out = b.shl(pick_w(w, false), rnd(0, w - 1)); break;
      case 10: out = b.sra(pick_w(w, true), rnd(0, 8)); break;
      default: out = b.addc(pick_w(w, true), pick_w(w, true), b.resize_u(pick(), 1)); break;
    }
    pool.push_back(out);
  }

  // Register next-functions and a handful of outputs.
  for (auto& r : regs) {
    b.assign(r, b.resize_u(pick(), 1), b.resize_s(pick(), r.q.width));
  }
  const int n_outs = rnd(1, 3);
  for (int o = 0; o < n_outs; ++o) b.output("out" + std::to_string(o), pick());
  return b.finalise();
}

class FuzzEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(FuzzEquivalence, InterpreterMatchesOptimisedGates) {
  std::mt19937_64 rng(0xF00D + static_cast<unsigned>(GetParam()));
  const Design d = random_design(rng, 24);
  const Design optimised = rtl::run_passes(d, rtl::PassOptions{});
  nl::Netlist gates = nl::lower_to_gates(optimised, {});
  gates = nl::optimize_gates(gates);

  rtl::Interpreter ref(d);
  hdlsim::GateSim sim(gates);

  for (int cycle = 0; cycle < 60; ++cycle) {
    for (const auto& in : d.inputs()) {
      const std::uint64_t v = rng() & bit_mask(in.width);
      ref.set_input(in.name, v);
      sim.set_input(in.name, v);
    }
    ref.evaluate();
    sim.settle();
    for (const auto& out : d.outputs()) {
      ASSERT_EQ(ref.output(out.name), sim.output(out.name))
          << "seed " << GetParam() << " cycle " << cycle << " output " << out.name;
    }
    ref.step();
    sim.step();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzEquivalence, ::testing::Range(0, 24));

}  // namespace
}  // namespace scflow
