// Randomised cross-layer equivalence: generate random word-level designs
// (expression DAGs + registers + a memory), run the word-level passes and
// the full gate lowering/optimisation, and check that the rtl::Interpreter
// and the 4-value gate simulator agree cycle for cycle on random stimulus.
// This is the synthesis substrate's strongest safety net.
#include <gtest/gtest.h>

#include <random>

#include "dtypes/bit_int.hpp"
#include "hdlsim/compiled_sim.hpp"
#include "hdlsim/gate_sim.hpp"
#include "netlist/lower.hpp"
#include "netlist/opt.hpp"
#include "netlist_fuzz.hpp"
#include "rtl/builder.hpp"
#include "rtl/interpreter.hpp"
#include "rtl/passes.hpp"

namespace scflow {
namespace {

using rtl::Design;
using rtl::DesignBuilder;
using rtl::Sig;

/// Builds a random design with @p n_ops operations over a few inputs and
/// registers.  All generated constructs stay within the IR's contract
/// (widths 1..48, argument widths matched through resize).
Design random_design(std::mt19937_64& rng, int n_ops) {
  DesignBuilder b("fuzz");
  auto rnd = [&rng](int lo, int hi) {
    return lo + static_cast<int>(rng() % static_cast<std::uint64_t>(hi - lo + 1));
  };

  std::vector<Sig> pool;
  const int n_inputs = rnd(2, 4);
  for (int i = 0; i < n_inputs; ++i)
    pool.push_back(b.input("in" + std::to_string(i), rnd(1, 24)));
  std::vector<rtl::Reg> regs;
  const int n_regs = rnd(1, 3);
  for (int r = 0; r < n_regs; ++r) {
    regs.push_back(b.reg("r" + std::to_string(r), rnd(2, 32),
                         static_cast<std::int64_t>(rng() & 0xff)));
    pool.push_back(regs.back().q);
  }
  pool.push_back(b.c(rnd(1, 32), static_cast<std::int64_t>(rng())));

  auto pick = [&]() { return pool[static_cast<std::size_t>(rnd(0, static_cast<int>(pool.size()) - 1))]; };
  auto pick_w = [&](int w, bool sign) {
    Sig s = pick();
    return sign ? b.resize_s(s, w) : b.resize_u(s, w);
  };

  for (int i = 0; i < n_ops; ++i) {
    const int w = rnd(1, 40);
    Sig out;
    switch (rnd(0, 11)) {
      case 0: out = b.add(pick_w(w, true), pick_w(w, true)); break;
      case 1: out = b.sub(pick_w(w, true), pick_w(w, true)); break;
      case 2: {
        const Sig a = pick_w(rnd(1, 17), true);
        const Sig c = pick_w(rnd(1, 17), true);
        out = b.mul(a, c, std::min(a.width + c.width, 40));
        break;
      }
      case 3: out = b.and_(pick_w(w, false), pick_w(w, false)); break;
      case 4: out = b.or_(pick_w(w, false), pick_w(w, false)); break;
      case 5: out = b.xor_(pick_w(w, false), pick_w(w, false)); break;
      case 6: out = b.not_(pick_w(w, false)); break;
      case 7: out = b.zext(b.mux(b.resize_u(pick(), 1), pick_w(w, false), pick_w(w, false)), w); break;
      case 8: out = b.zext(b.lt_s(pick_w(w, true), pick_w(w, true)), rnd(1, 4)); break;
      case 9: out = b.shl(pick_w(w, false), rnd(0, w - 1)); break;
      case 10: out = b.sra(pick_w(w, true), rnd(0, 8)); break;
      default: out = b.addc(pick_w(w, true), pick_w(w, true), b.resize_u(pick(), 1)); break;
    }
    pool.push_back(out);
  }

  // Register next-functions and a handful of outputs.
  for (auto& r : regs) {
    b.assign(r, b.resize_u(pick(), 1), b.resize_s(pick(), r.q.width));
  }
  const int n_outs = rnd(1, 3);
  for (int o = 0; o < n_outs; ++o) b.output("out" + std::to_string(o), pick());
  return b.finalise();
}

class FuzzEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(FuzzEquivalence, InterpreterMatchesOptimisedGates) {
  std::mt19937_64 rng(0xF00D + static_cast<unsigned>(GetParam()));
  const Design d = random_design(rng, 24);
  const Design optimised = rtl::run_passes(d, rtl::PassOptions{});
  nl::Netlist gates = nl::lower_to_gates(optimised, {});
  gates = nl::optimize_gates(gates);

  rtl::Interpreter ref(d);
  hdlsim::GateSim sim(gates);

  for (int cycle = 0; cycle < 60; ++cycle) {
    for (const auto& in : d.inputs()) {
      const std::uint64_t v = rng() & bit_mask(in.width);
      ref.set_input(in.name, v);
      sim.set_input(in.name, v);
    }
    ref.evaluate();
    sim.settle();
    for (const auto& out : d.outputs()) {
      ASSERT_EQ(ref.output(out.name), sim.output(out.name))
          << "seed " << GetParam() << " cycle " << cycle << " output " << out.name;
    }
    ref.step();
    sim.step();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzEquivalence, ::testing::Range(0, 24));

// ---------------------------------------------------------------------------
// Table-driven vs reference evaluator.
//
// The gate simulator's hot path evaluates cells through precomputed truth
// tables (and batches dirty units through a bitmap); the original
// switch-based evaluator is retained behind Options::use_reference_eval.
// Both must be bit-identical — including X/Z propagation — on arbitrary
// netlists, so this fuzz builds random gate netlists directly (flop
// feedback loops included) and drives them with four-valued stimulus.
// ---------------------------------------------------------------------------

// random_gate_netlist / random_logic_vector live in netlist_fuzz.hpp,
// shared with the compiled-backend differential in test_compiled_sim.

/// 1000 netlists sharded across parallel-friendly gtest cases; each runs a
/// three-way differential on identical four-valued stimulus: the
/// table-driven sim against the reference-evaluator sim (bit-identical
/// outputs every cycle, 'Z' included) and against the compiled four-state
/// backend (X-masked: Z collapses to unknown, so knownness and known
/// values must match).
class GateFuzzTableVsReference : public ::testing::TestWithParam<int> {};

TEST_P(GateFuzzTableVsReference, BitIdenticalOverRandomNetlists) {
  constexpr int kSeedsPerShard = 125;
  for (int s = 0; s < kSeedsPerShard; ++s) {
    const unsigned seed = 0xFACE0000u + static_cast<unsigned>(GetParam() * kSeedsPerShard + s);
    std::mt19937_64 rng(seed);
    const nl::Netlist n = random_gate_netlist(rng);

    hdlsim::GateSim::Options table_opts;
    table_opts.x_initial_flops = (rng() & 1) != 0;
    hdlsim::GateSim::Options ref_opts = table_opts;
    ref_opts.use_reference_eval = true;
    // The parallel level sweep must be invisible: give the table engine a
    // random lane count (1/2/4) while the switch-based oracle stays
    // sequential — outputs and counters must still match bit for bit.
    table_opts.threads = 1u << (rng() % 3);
    hdlsim::GateSim table(n, table_opts);
    hdlsim::GateSim ref(n, ref_opts);
    // Third leg: the compiled bit-parallel backend in four-state mode,
    // broadcast-driven with the same stimulus.  Z collapses to X there,
    // so the comparison is X-masked rather than string-exact.
    hdlsim::CompiledSim::Options comp_opts;
    comp_opts.four_state = true;
    comp_opts.x_initial_flops = table_opts.x_initial_flops;
    hdlsim::CompiledSim comp(n, comp_opts);

    const int cycles = 12;
    for (int cycle = 0; cycle < cycles; ++cycle) {
      for (const auto& in : n.inputs()) {
        const LogicVector v = random_logic_vector(rng, in.nets.size(), /*allow_xz=*/cycle > 2);
        table.set_input_logic(in.name, v);
        ref.set_input_logic(in.name, v);
        comp.set_input_logic(in.name, v);
      }
      table.settle();
      ref.settle();
      comp.settle();
      for (const auto& out : n.outputs()) {
        ASSERT_EQ(table.output_bits(out.name).to_string(), ref.output_bits(out.name).to_string())
            << "seed " << seed << " cycle " << cycle << " output " << out.name;
        const LogicVector want = table.output_bits(out.name);
        const LogicVector got = comp.output_bits(out.name, /*lane=*/0);
        ASSERT_EQ(want.width(), got.width());
        for (std::size_t b = 0; b < want.width(); ++b) {
          const bool known = logic_is_01(want.at(b));
          ASSERT_EQ(known, logic_is_01(got.at(b)))
              << "seed " << seed << " cycle " << cycle << " output " << out.name
              << " bit " << b << " knownness (gate " << want.to_string() << " vs compiled "
              << got.to_string() << ")";
          if (known)
            ASSERT_EQ(want.at(b), got.at(b))
                << "seed " << seed << " cycle " << cycle << " output " << out.name
                << " bit " << b;
        }
      }
      // Broadcast stimulus must keep every pattern lane identical: each
      // output bit's value/known words are all-zeros or all-ones.
      if (cycle == cycles - 1) {
        for (const auto& out : n.outputs()) {
          const auto port = comp.output_port(out.name);
          for (std::size_t b = 0; b < out.nets.size(); ++b) {
            const std::uint64_t v = comp.output_word(port, b);
            const std::uint64_t k = comp.output_known_word(port, b);
            ASSERT_TRUE(v == 0 || v == ~0ull) << "seed " << seed << " lane skew";
            ASSERT_TRUE(k == 0 || k == ~0ull) << "seed " << seed << " lane skew";
          }
        }
      }
      table.step();
      ref.step();
      comp.step();
    }
    // The two engines must agree on the work metrics too: neither the LUT
    // path nor the thread count may change which evaluations happen, how
    // many fresh dirty transitions occur, or the queue high-water mark.
    ASSERT_EQ(table.counters().evaluations, ref.counters().evaluations) << "seed " << seed;
    ASSERT_EQ(table.counters().dirty_pushes, ref.counters().dirty_pushes) << "seed " << seed;
    ASSERT_EQ(table.counters().peak_queue_depth, ref.counters().peak_queue_depth)
        << "seed " << seed;
    ASSERT_EQ(table.counters().steady_state_allocs, 0u) << "seed " << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(Shards, GateFuzzTableVsReference, ::testing::Range(0, 8));

}  // namespace
}  // namespace scflow
