// The synthesis side of the evaluation: all five SRC architectures go
// through the full flow (word-level passes, bit-blasting, gate
// optimisation, scan insertion) and the Fig. 10 area table is printed.
// The RTL-optimised design is additionally written out as behavioural RTL
// Verilog and as a structural gate-level Verilog netlist.
#include <cstdio>
#include <fstream>

#include "flow/synthesis_flow.hpp"
#include "rtl/src_design.hpp"
#include "verilog/writer.hpp"

int main() {
  using namespace scflow;

  std::printf("=== Synthesis flow: Fig. 10 area comparison ===\n\n");
  const auto rows = flow::figure10_area_rows();
  std::printf("%s\n", flow::format_area_table(rows).c_str());

  // Emit the Verilog artefacts the paper's flow hands to simulation.
  const rtl::Design design = rtl::build_src_design(rtl::rtl_opt_config());
  {
    std::ofstream f("src_rtl_opt.v");
    f << vlog::write_behavioural(design);
    std::printf("wrote behavioural RTL Verilog      -> src_rtl_opt.v\n");
  }
  {
    nl::GateOptStats stats;
    const nl::Netlist gates = flow::synthesize_to_gates(design, &stats);
    std::ofstream f("src_rtl_opt_gates.v");
    f << vlog::write_structural(gates);
    std::printf("wrote gate-level structural Verilog -> src_rtl_opt_gates.v\n");
    std::printf("  gate optimisation: %zu -> %zu cells (%zu rewrites, %d passes)\n",
                stats.cells_before, stats.cells_after, stats.rewrites,
                stats.iterations);
    const auto area = nl::report_area(gates);
    std::printf("  report_area: comb %.1f um^2, seq %.1f um^2, %zu cells, %zu flops\n",
                area.combinational, area.sequential, area.cell_count, area.flop_count);
  }
  return 0;
}
