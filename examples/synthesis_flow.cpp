// The synthesis side of the evaluation: all five SRC architectures go
// through the full flow (word-level passes, bit-blasting, gate
// optimisation, scan insertion) and the Fig. 10 area table is printed.
// The RTL-optimised design is additionally written out as behavioural RTL
// Verilog and as a structural gate-level Verilog netlist.
//
// With --cec, every netlist refinement step (gate optimisation, scan
// insertion) is formally proven equivalence-preserving; per-design check
// stats are printed from the "fig10.<design>.cec.*" metrics.
//
// With --ledger FILE, one run-ledger entry per design synthesis (and per
// CEC proof under --cec) is *appended* to FILE — the same JSONL a prior
// refinement_flow --ledger run started, so one file describes the whole
// flow; render/diff it with tools/scflow_report.
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>

#include "flow/synthesis_flow.hpp"
#include "obs/session.hpp"
#include "rtl/src_design.hpp"
#include "verilog/writer.hpp"

int main(int argc, char** argv) {
  using namespace scflow;

  bool verify_cec = false;
  std::string ledger_path;
  std::string out_dir = "build/out";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--cec") == 0) {
      verify_cec = true;
    } else if (std::strcmp(argv[i], "--ledger") == 0 && i + 1 < argc) {
      ledger_path = argv[++i];
    } else if (std::strcmp(argv[i], "--out-dir") == 0 && i + 1 < argc) {
      out_dir = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--cec] [--ledger FILE] [--out-dir DIR]\n",
                   argv[0]);
      return 2;
    }
  }

  std::error_code ec;
  std::filesystem::create_directories(out_dir, ec);
  if (ec) {
    std::fprintf(stderr, "error: cannot create --out-dir %s: %s\n",
                 out_dir.c_str(), ec.message().c_str());
    return 1;
  }

  std::printf("=== Synthesis flow: Fig. 10 area comparison ===\n\n");
  obs::Session session;
  obs::Registry& reg = session.registry;
  flow::SynthesisOptions opts;
  opts.verify_cec = verify_cec;
  const auto rows = flow::figure10_area_rows(&reg, opts);
  std::printf("%s\n", flow::format_area_table(rows).c_str());

  if (verify_cec) {
    std::printf("formal gates: every opt/scan refinement step proven by CEC\n");
    std::printf("%-12s %14s %14s %10s %10s\n", "design", "opt bits", "scan bits",
                "sat calls", "conflicts");
    for (const char* slug :
         {"vhdl_ref", "beh_unopt", "beh_opt", "rtl_unopt", "rtl_opt"}) {
      const std::string p = std::string("fig10.") + slug;
      std::printf("%-12s %14llu %14llu %10llu %10llu\n", slug,
                  static_cast<unsigned long long>(reg.counter(p + ".cec.opt.compare_bits")),
                  static_cast<unsigned long long>(reg.counter(p + ".cec.scan.compare_bits")),
                  static_cast<unsigned long long>(reg.counter(p + ".cec.opt.sat_calls") +
                                                  reg.counter(p + ".cec.scan.sat_calls")),
                  static_cast<unsigned long long>(reg.counter(p + ".cec.opt.sat_conflicts") +
                                                  reg.counter(p + ".cec.scan.sat_conflicts")));
    }
    std::printf("\n");
  }

  // Emit the Verilog artefacts the paper's flow hands to simulation.
  const rtl::Design design = rtl::build_src_design(rtl::rtl_opt_config());
  const std::string rtl_path = out_dir + "/src_rtl_opt.v";
  const std::string gates_path = out_dir + "/src_rtl_opt_gates.v";
  {
    std::ofstream f(rtl_path);
    f << vlog::write_behavioural(design);
    std::printf("wrote behavioural RTL Verilog      -> %s\n", rtl_path.c_str());
  }
  {
    nl::GateOptStats stats;
    const nl::Netlist gates = flow::synthesize_to_gates(design, &stats, &reg, "synth", opts);
    std::ofstream f(gates_path);
    f << vlog::write_structural(gates);
    std::printf("wrote gate-level structural Verilog -> %s\n", gates_path.c_str());
    std::printf("  gate optimisation: %zu -> %zu cells (%zu rewrites, %d passes)\n",
                stats.cells_before, stats.cells_after, stats.rewrites,
                stats.iterations);
    const auto area = nl::report_area(gates);
    std::printf("  report_area: comb %.1f um^2, seq %.1f um^2, %zu cells, %zu flops\n",
                area.combinational, area.sequential, area.cell_count, area.flop_count);
  }

  if (!ledger_path.empty()) {
    session.ledger.meta = obs::collect_run_metadata(argv[0]);
    if (!session.ledger.write(ledger_path, /*append=*/true)) {
      std::fprintf(stderr, "error: cannot write %s\n", ledger_path.c_str());
      return 1;
    }
    std::printf("run ledger: %s\n", ledger_path.c_str());
  }
  return 0;
}
