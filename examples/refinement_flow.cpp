// The paper's design flow (Fig. 1), executed end to end: every abstraction
// level runs the same stimulus, each refinement step is revalidated for
// bit accuracy, and the time-quantisation effect (Fig. 7) is shown as the
// single value-changing step in the chain.
#include <cstdio>

#include "flow/refinement_flow.hpp"

int main() {
  using namespace scflow;

  std::printf("=== Refinement-driven design flow (paper Fig. 1) ===\n\n");
  const auto report = flow::run_refinement_flow(dsp::SrcMode::k44_1To48, 800);
  std::printf("%s\n", flow::format_refinement_report(report).c_str());

  std::printf("Per-level simulation effort for the same stimulus:\n");
  std::printf("  %-22s %14s %14s %14s\n", "level", "sim. cycles", "activations",
              "ctx switches");
  for (const auto& [name, result] : report.level_results) {
    std::printf("  %-22s %14llu %14llu %14llu\n", name.c_str(),
                static_cast<unsigned long long>(result.simulated_cycles),
                static_cast<unsigned long long>(result.stats.process_activations),
                static_cast<unsigned long long>(result.stats.context_switches));
  }
  std::printf("\nNote how the clocked levels activate processes every cycle while\n");
  std::printf("the algorithmic and channel levels only work per sample event —\n");
  std::printf("the mechanism behind the paper's Fig. 8 performance ladder.\n");
  return report.all_steps_verified() ? 0 : 1;
}
