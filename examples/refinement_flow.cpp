// The paper's design flow (Fig. 1), executed end to end: every abstraction
// level runs the same stimulus, each refinement step is revalidated for
// bit accuracy, and the time-quantisation effect (Fig. 7) is shown as the
// single value-changing step in the chain.
//
// Usage: refinement_flow [--report FILE] [--trace FILE] [--ledger FILE]
//   --report FILE   write the unified metric report (scflow-obs-2 JSON)
//   --trace FILE    write a Chrome trace-event timeline (chrome://tracing,
//                   Perfetto "open trace file")
//   --ledger FILE   append run-ledger entries (scflow-ledger-1 JSONL): one
//                   per simulated level and per verified refinement step,
//                   for tools/scflow_report to render and diff
#include <cstdio>
#include <cstring>
#include <string>

#include "flow/refinement_flow.hpp"

int main(int argc, char** argv) {
  using namespace scflow;

  std::string report_path, trace_path, ledger_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--report") == 0 && i + 1 < argc) {
      report_path = argv[++i];
    } else if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < argc) {
      trace_path = argv[++i];
    } else if (std::strcmp(argv[i], "--ledger") == 0 && i + 1 < argc) {
      ledger_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--report FILE] [--trace FILE] [--ledger FILE]\n",
                   argv[0]);
      return 2;
    }
  }

  std::printf("=== Refinement-driven design flow (paper Fig. 1) ===\n\n");
  obs::Session session;
  const auto report = flow::run_refinement_flow(dsp::SrcMode::k44_1To48, 800, &session);
  std::printf("%s\n", flow::format_refinement_report(report).c_str());

  std::printf("Per-level simulation effort for the same stimulus:\n");
  std::printf("  %-22s %14s %14s %14s\n", "level", "sim. cycles", "activations",
              "ctx switches");
  for (const auto& [name, result] : report.level_results) {
    std::printf("  %-22s %14llu %14llu %14llu\n", name.c_str(),
                static_cast<unsigned long long>(result.simulated_cycles),
                static_cast<unsigned long long>(result.stats.process_activations),
                static_cast<unsigned long long>(result.stats.context_switches));
  }
  std::printf("\nNote how the clocked levels activate processes every cycle while\n");
  std::printf("the algorithmic and channel levels only work per sample event —\n");
  std::printf("the mechanism behind the paper's Fig. 8 performance ladder.\n");

  if (!report_path.empty() || !trace_path.empty() || !ledger_path.empty()) {
    session.ledger.meta = obs::collect_run_metadata(argv[0]);
    bool ok = session.dump(report_path, trace_path);
    // Append, so one ledger file can collect a whole flow run across
    // tools (refinement_flow, then synthesis_flow, ...) — the header is
    // only written when the file starts empty.
    if (!ledger_path.empty())
      ok = session.ledger.write(ledger_path, /*append=*/true) && ok;
    if (!ok) {
      std::fprintf(stderr, "error: failed to write report/trace/ledger output\n");
      return 1;
    }
    if (!report_path.empty()) std::printf("\nmetrics report: %s\n", report_path.c_str());
    if (!trace_path.empty()) std::printf("timeline trace: %s\n", trace_path.c_str());
    if (!ledger_path.empty()) std::printf("run ledger: %s\n", ledger_path.c_str());
  }
  return report.all_steps_verified() ? 0 : 1;
}
