// Co-simulation vs native HDL simulation (the paper's Fig. 9 setup):
// the same interpreted DUT (here the RTL design) is driven once by the
// interpreted "VHDL testbench" VM and once by the compiled SystemC-style
// testbench through the cosim bridge; both produce identical outputs.
#include <chrono>
#include <cstdio>

#include "cosim/bridge.hpp"
#include "dsp/stimulus.hpp"
#include "hdlsim/dut.hpp"
#include "hdlsim/testbench_vm.hpp"
#include "rtl/src_design.hpp"

int main() {
  using namespace scflow;
  using P = dsp::SrcParams;
  using clock = std::chrono::steady_clock;

  const auto inputs = dsp::make_sine_stimulus(400, 1000.0, 44'100.0);
  const auto events =
      dsp::make_schedule(inputs, P::kPeriod44k1Ps, 400, P::kPeriod48kPs);
  const rtl::Design design = rtl::build_src_design(rtl::rtl_opt_config());

  std::printf("=== Co-simulation vs native HDL simulation (Fig. 9 setup) ===\n\n");

  const auto t0 = clock::now();
  hdlsim::RtlDut native_dut(design);
  const auto native = hdlsim::run_testbench_vm(
      native_dut, hdlsim::build_src_testbench(events, dsp::SrcMode::k44_1To48));
  const double native_s = std::chrono::duration<double>(clock::now() - t0).count();

  const auto t1 = clock::now();
  hdlsim::RtlDut cosim_dut(design);
  const auto cs = cosim::run_cosim(cosim_dut, dsp::SrcMode::k44_1To48, events);
  const double cosim_s = std::chrono::duration<double>(clock::now() - t1).count();

  bool identical = native.outputs.size() == cs.outputs.size();
  for (std::size_t i = 0; identical && i < native.outputs.size(); ++i)
    identical = native.outputs[i] == cs.outputs[i];

  std::printf("native (interpreted testbench VM):\n");
  std::printf("  %llu cycles, %zu outputs, %llu interpreted tb instructions, %.3f s "
              "(%.0f cyc/s)\n",
              static_cast<unsigned long long>(native.cycles), native.outputs.size(),
              static_cast<unsigned long long>(native.instructions_executed), native_s,
              static_cast<double>(native.cycles) / native_s);
  std::printf("cosim (compiled SystemC-style testbench + bridge):\n");
  std::printf("  %llu cycles, %zu outputs, %llu pin synchronisations, %.3f s "
              "(%.0f cyc/s)\n",
              static_cast<unsigned long long>(cs.cycles), cs.outputs.size(),
              static_cast<unsigned long long>(cs.syncs), cosim_s,
              static_cast<double>(cs.cycles) / cosim_s);
  std::printf("\noutputs identical: %s\n", identical ? "yes" : "NO");
  std::printf("cosim / native runtime ratio: %.2f\n", cosim_s / native_s);
  return identical ? 0 : 1;
}
