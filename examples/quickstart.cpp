// Quickstart: convert a 1 kHz stereo tone from 44.1 kHz (CD) to 48 kHz
// (DVD) with the golden algorithmic SRC — the paper's design example in a
// dozen lines of API.
#include <cstdio>

#include "dsp/golden_src.hpp"
#include "dsp/stimulus.hpp"

int main() {
  using namespace scflow::dsp;
  using P = SrcParams;

  // 1. Build the converter (CD -> DVD mode, exact event timestamps).
  AlgorithmicSrc src(SrcMode::k44_1To48, AlgorithmicSrc::TimeBase::kContinuousPs);

  // 2. Make a second of stimulus and the interleaved input/output event
  //    schedule (inputs every 1/44.1 kHz, output requests every 1/48 kHz).
  const auto inputs = make_sine_stimulus(44'100, 1000.0, 44'100.0);
  const auto events = make_schedule(inputs, P::kPeriod44k1Ps, 48'000, P::kPeriod48kPs);

  // 3. Stream the events through the SRC.
  std::vector<std::int16_t> left_out;
  for (const auto& e : events) {
    if (e.is_input) {
      src.push_input(e.t_ps, e.sample);
    } else {
      left_out.push_back(src.pull_output(e.t_ps).left);
    }
  }

  // 4. Inspect the result.
  std::printf("quickstart: 44.1 kHz -> 48 kHz sample-rate conversion\n");
  std::printf("  input samples : %zu @ 44.1 kHz\n", inputs.size());
  std::printf("  output samples: %zu @ 48 kHz\n", left_out.size());
  std::printf("  rate tracking converged: %s (increment %lld, nominal %lld)\n",
              src.tracking() ? "yes" : "no",
              static_cast<long long>(src.increment()),
              static_cast<long long>(P::nominal_increment(SrcMode::k44_1To48)));

  // Measure over a window (a long window would count the slow phase wander
  // of the rate-tracking loop as noise).
  const std::vector<std::int16_t> tail(left_out.begin() + 8000, left_out.begin() + 12000);
  std::printf("  steady-state tone SNR: %.1f dB\n", tone_snr_db(tail, 1000.0, 48'000.0));

  std::printf("  first audible outputs:");
  for (std::size_t i = 20; i < 28; ++i) std::printf(" %d", left_out[i]);
  std::printf("\n");
  return 0;
}
