// The paper's §4.7 anecdote, reproduced end to end:
//
//   "a bug in the golden model was refined down to Gate-level and was
//    discovered during Gate-level simulation ... when the memory for the
//    buffer was replaced by an automatically generated simulation model
//    (that included a check for valid addresses), the bug became obvious."
//
// The injected bug reads one sample too far into the past in the mu == 0
// corner.  It survives every simulation level unnoticed (outputs remain
// plausible audio) until the gate-level run with the checking RAM model.
#include <algorithm>
#include <cstdio>

#include "core/run.hpp"
#include "dsp/stimulus.hpp"
#include "flow/synthesis_flow.hpp"
#include "formal/cec.hpp"
#include "hdlsim/src_gate_sim.hpp"
#include "rtl/src_design.hpp"

int main() {
  using namespace scflow;
  using P = dsp::SrcParams;

  // Corner-case stimulus: pass-through mode with a 60-period consumer
  // stall, so the buffer overruns to the cap where the read position is
  // exactly sample-aligned.
  const auto inputs = dsp::make_noise_stimulus(300, 9);
  std::vector<dsp::SrcEvent> events;
  for (std::size_t i = 0; i < inputs.size(); ++i)
    events.push_back({(i + 1) * P::kPeriod48kPs, true, inputs[i]});
  for (std::size_t j = 0; j < 220; ++j) {
    const std::uint64_t slot = j < 40 ? j : j + 60;
    events.push_back({(slot + 1) * P::kPeriod48kPs + 777, false, {}});
  }
  std::stable_sort(events.begin(), events.end(),
                   [](const dsp::SrcEvent& a, const dsp::SrcEvent& b) {
                     return a.t_ps < b.t_ps;
                   });

  std::printf("=== Gate-level bug discovery (paper section 4.7) ===\n\n");

  // 1. The bug is present in the golden model; simulation looks fine.
  model::RunOptions bug_opt;
  bug_opt.inject_corner_bug = true;
  bug_opt.quantized_time = true;
  const auto golden_bugged =
      model::run_level(model::RefinementLevel::kAlgorithmicCpp, dsp::SrcMode::k48To48,
                       events, bug_opt);
  model::RunOptions clean_opt;
  clean_opt.quantized_time = true;
  const auto golden_clean =
      model::run_level(model::RefinementLevel::kAlgorithmicCpp, dsp::SrcMode::k48To48,
                       events, clean_opt);
  std::size_t diffs = 0;
  for (std::size_t i = 0; i < golden_clean.outputs.size(); ++i)
    if (golden_clean.outputs[i] != golden_bugged.outputs[i]) ++diffs;
  std::printf("golden model with bug: %zu outputs, %zu subtly wrong (%.1f%%),\n",
              golden_bugged.outputs.size(), diffs,
              100.0 * static_cast<double>(diffs) /
                  static_cast<double>(golden_bugged.outputs.size()));
  std::printf("  -> nothing fails; the audio is still plausible.\n\n");

  // 2. Function-preserving refinement carries the bug down to gates.
  rtl::SrcArchConfig cfg = rtl::rtl_opt_config();
  cfg.inject_corner_bug = true;
  const auto gates = flow::synthesize_to_gates(rtl::build_src_design(cfg));
  const auto plain = hdlsim::run_src_netlist(gates, dsp::SrcMode::k48To48, events);
  std::printf("gate-level simulation (plain RAM model): %zu outputs, 0 errors reported.\n\n",
              plain.outputs.size());

  // 3. Replace the buffer RAM with the generated checking model.
  hdlsim::GateSim::Options check;
  check.check_ram = true;
  const auto checked = hdlsim::run_src_netlist(gates, dsp::SrcMode::k48To48, events, check);
  std::printf("gate-level simulation with address-checking RAM model:\n");
  std::printf("  %llu invalid accesses flagged; first: %s read of slot %u at cycle %llu\n",
              static_cast<unsigned long long>(checked.ram_violations.count),
              checked.ram_violations.first_kind.c_str(),
              checked.ram_violations.first_address,
              static_cast<unsigned long long>(checked.ram_violations.first_cycle));

  // 4. Control: the fixed design stays clean under the same stress.
  const auto fixed_gates =
      flow::synthesize_to_gates(rtl::build_src_design(rtl::rtl_opt_config()));
  const auto fixed =
      hdlsim::run_src_netlist(fixed_gates, dsp::SrcMode::k48To48, events, check);
  std::printf("\nfixed design under the same stimulus: %llu violations.\n",
              static_cast<unsigned long long>(fixed.ram_violations.count));

  // 5. The formal route: CEC of the bugged gate netlist against the clean
  //    one finds the divergence with *no stimulus at all* — the default
  //    stimulus above never exercised the mu == 0 corner, but the SAT
  //    miter steers straight into it and hands back a concrete input +
  //    flop-state vector, replayed through GateSim for confirmation.
  std::printf("\nformal check (no stimulus): CEC bugged vs clean netlist...\n");
  const formal::CecResult cec = formal::check_equivalence(
      fixed_gates, gates, nullptr, formal::CecOptions::scan_modulo());
  if (cec.status != formal::CecStatus::kNotEquivalent || !cec.cex) {
    std::printf("  unexpected: CEC did not refute equivalence\n");
    return 1;
  }
  std::printf("  counterexample found: output '%s' bit %d differs (clean=%llu bugged=%llu)\n",
              cec.cex->divergent_output.c_str(), cec.cex->divergent_bit,
              static_cast<unsigned long long>(cec.cex->value_a),
              static_cast<unsigned long long>(cec.cex->value_b));
  std::printf("  GateSim replay of the vector: %s\n",
              cec.cex->replay_confirmed ? "mismatch reproduced" : "NOT reproduced");
  return checked.ram_violations.count > 0 && fixed.ram_violations.count == 0 &&
                 cec.cex->replay_confirmed
             ? 0
             : 1;
}
