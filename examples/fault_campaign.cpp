// Fault-injection walkthrough: what scan insertion buys in testability,
// measured instead of asserted.
//
// The default run takes the optimised RTL SRC design through synthesis,
// keeps the pre-scan twin, enumerates the collapsed stuck-at fault list
// (valid on both variants — scan insertion preserves net ids), and runs
// the same sampled campaign against both netlists.  It then injects SEUs
// (transient flop bit-flips) into the scan endpoint and reports how many
// upsets reach an output vs. get masked, dumping the first divergence as
// a VCD trace.
//
// `--check` instead runs the campaign pair over all five Fig. 10 designs
// with the FULL collapsed fault list per design (no sampling — the PPSFP
// bit-parallel engine with fault dropping is what makes that interactive)
// and exits non-zero unless every design's scan coverage strictly exceeds
// its no-scan coverage and every population was simulated whole — the
// acceptance gate scripts/check.sh runs.
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>

#include "fault/campaign.hpp"
#include "fault/seu.hpp"
#include "flow/synthesis_flow.hpp"
#include "rtl/src_design.hpp"

namespace {

int run_check() {
  scflow::flow::FaultOptions fopt;
  fopt.run = true;
  fopt.campaign.max_faults = 0;  // the full collapsed list, every design
  fopt.campaign.engine = scflow::fault::CampaignOptions::Engine::kPpsfp;
  const auto rows = scflow::flow::figure10_area_rows(nullptr, {}, fopt);
  std::printf("%s", scflow::flow::format_fault_table(rows).c_str());
  bool ok = true;
  for (const auto& r : rows) {
    if (r.scan_coverage_pct <= r.noscan_coverage_pct) {
      std::printf("FAIL: %s scan coverage %.1f%% does not exceed no-scan %.1f%%\n",
                  r.name.c_str(), r.scan_coverage_pct, r.noscan_coverage_pct);
      ok = false;
    }
    if (r.faults_simulated != r.fault_population) {
      std::printf("FAIL: %s simulated %zu of %zu collapsed faults (expected the "
                  "full list)\n",
                  r.name.c_str(), r.faults_simulated, r.fault_population);
      ok = false;
    }
  }
  std::printf("\nfull fault lists, scan strictly improves coverage on all %zu designs: "
              "%s\n",
              rows.size(), ok ? "yes" : "NO");
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace scflow;
  bool check = false;
  std::string out_dir = "build/out";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--check") == 0) {
      check = true;
    } else if (std::strcmp(argv[i], "--out-dir") == 0 && i + 1 < argc) {
      out_dir = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--check] [--out-dir DIR]\n", argv[0]);
      return 2;
    }
  }
  if (check) return run_check();

  std::error_code ec;
  std::filesystem::create_directories(out_dir, ec);
  if (ec) {
    std::fprintf(stderr, "error: cannot create --out-dir %s: %s\n",
                 out_dir.c_str(), ec.message().c_str());
    return 1;
  }

  std::printf("=== Stuck-at campaign: scan vs. pre-scan twin (RTL opt.) ===\n\n");

  // Synthesise once, keeping the optimised netlist from just before scan
  // insertion: the fault universe is shared between the two variants.
  nl::Netlist pre_scan("");
  const nl::Netlist gates = flow::synthesize_to_gates(
      rtl::build_src_design(rtl::rtl_opt_config()), nullptr, nullptr, "synth", {}, &pre_scan);

  fault::FaultListStats stats;
  std::vector<fault::Fault> faults = fault::enumerate_stuck_faults(pre_scan, &stats);
  std::printf("fault universe: %zu sites, %zu raw stuck-at faults, %zu after FFR collapse "
              "(%zu dropped as equivalent)\n",
              stats.sites, stats.raw, stats.raw - stats.collapsed, stats.collapsed);

  fault::CampaignOptions opt;
  opt.max_faults = 0;  // full population; ~9k gates x a few hundred cycles
  faults = fault::sample_faults(faults, 160);
  std::printf("campaign: %zu sampled faults, seed 0x%llx\n\n", faults.size(),
              static_cast<unsigned long long>(opt.seed));

  const fault::CampaignResult scan_on = fault::run_campaign(gates, faults, opt);
  fault::CampaignOptions no_scan_opt = opt;
  no_scan_opt.use_scan = false;
  const fault::CampaignResult scan_off = fault::run_campaign(pre_scan, faults, no_scan_opt);

  const auto show = [](const char* label, const fault::CampaignResult& r) {
    std::printf("%-22s %zu cycles of stimulus (scan %s), coverage %5.1f%%\n", label,
                r.stimulus_cycles, r.scan_used ? "driven" : "absent", r.coverage_pct());
    std::printf("%-22s detected %zu, undetected %zu, budget %zu, oscillating %zu\n", "",
                r.detected, r.undetected, r.undetected_budget, r.oscillating);
  };
  show("scan endpoint:", scan_on);
  show("pre-scan twin:", scan_off);
  std::printf("testability delta: %+.1f%% coverage from scan insertion\n\n",
              scan_on.coverage_pct() - scan_off.coverage_pct());

  // A few concrete detections, named through the netlist.
  std::printf("sample detections on the scan endpoint:\n");
  int shown = 0;
  for (const fault::FaultResult& fr : scan_on.faults) {
    if (fr.klass != fault::FaultClass::kDetected || shown >= 3) continue;
    std::printf("  %-44s -> cycle %zu, port '%s'\n",
                fault::describe_fault(gates, fr.fault).c_str(), fr.detect_cycle,
                scan_on.observe_ports[fr.detect_port].c_str());
    ++shown;
  }

  std::printf("\n=== SEU campaign: transient flop upsets ===\n\n");
  fault::SeuOptions seu_opt;
  seu_opt.vcd_path = out_dir + "/seu_divergence.vcd";
  const fault::SeuResult seu = fault::run_seu_campaign(gates, seu_opt);
  std::printf("%zu upsets injected: %zu reached an output, %zu recovered silently, "
              "%zu fully masked\n",
              seu.injected, seu.diverged, seu.recovered, seu.silent);
  if (!seu.vcd_written.empty())
    std::printf("first divergence traced to %s (good vs faulty waves): %s\n",
                seu.first_divergent_net.c_str(), seu_opt.vcd_path.c_str());

  const bool ok = scan_on.coverage_pct() > scan_off.coverage_pct() && seu.injected > 0;
  std::printf("\nscan coverage exceeds no-scan: %s\n", ok ? "yes" : "NO");
  return ok ? 0 : 1;
}
