#!/usr/bin/env bash
# Benchmark-trajectory snapshot: runs the headline gate-cosim benchmark on
# both hdlsim backends plus the full-population PPSFP fault campaigns, and
# folds the google-benchmark JSON reports into a committed BENCH_<date>.json
# (schema scflow-bench-1, see scripts/bench_compare.py).  The pinned
# metrics are the pattern throughputs (patterns x cycles / s) of the two
# synthesized Fig. 10 gate netlists under the VHDL-style testbench — the
# numbers the compiled-backend acceptance rests on — for both backends,
# and the faults/s of every Fig. 10 design's full-list PPSFP campaign
# pair, so a later change that quietly slows either engine >20% fails
# scripts/check.sh.
#
# Usage: scripts/bench_trajectory.sh [OUT.json]
#   REPEAT=N   repetitions per benchmark; the ratchet keeps the best run,
#              so more repeats only stabilise the number (default 3)
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS=$(nproc 2>/dev/null || echo 4)
REPEAT="${REPEAT:-3}"
OUT="${1:-BENCH_$(date +%F).json}"
FILTER='Fig9_Gate(BEH|RTL)_VhdlTestbench'
TMP=$(mktemp -d)
trap 'rm -rf "$TMP"' EXIT

cmake -B build -S . >/dev/null
cmake --build build -j"$JOBS" --target bench_fig9_cosim bench_fault bench_serve >/dev/null

# Provenance for the gbench "context" stamp (scflow_rev/host/threads via
# bench_json_main.hpp) — the same rev lands in the trajectory file below.
export SCFLOW_GIT_REV="$(git rev-parse HEAD)"

for backend in interpreted compiled; do
  echo "== bench_fig9_cosim --backend $backend (repeat $REPEAT) =="
  ./build/bench/bench_fig9_cosim --backend "$backend" \
    --benchmark_filter="$FILTER" --repeat "$REPEAT" \
    --benchmark_out="$TMP/$backend.gbench.json" \
    --benchmark_out_format=json >/dev/null
done

# Full-population stuck-at campaigns (scan + noscan pair per design) on
# the PPSFP engine — the fault-throughput half of the trajectory.  A
# fixed thread count keeps the number comparable across machines.
echo "== bench_fault --engine ppsfp --faults 0 (repeat $REPEAT) =="
./build/bench/bench_fault --engine ppsfp --faults 0 --threads 4 \
  --repeat "$REPEAT" --gbench-json "$TMP/fault.gbench.json" >/dev/null

# Streaming SRC service soak (512 sessions over 8 rate pairs, 4 lanes) —
# the aggregate conversion throughput of the session scheduler.
echo "== bench_serve --threads 4 (repeat $REPEAT) =="
./build/bench/bench_serve --threads 4 \
  --repeat "$REPEAT" --gbench-json "$TMP/serve.gbench.json" >/dev/null

python3 scripts/bench_compare.py emit \
  --rev "$(git rev-parse HEAD)" \
  --out "$OUT" \
  --pin 'fig9_cosim[interpreted]/Fig9_GateBEH_VhdlTestbench.patt_cyc_per_s' \
  --pin 'fig9_cosim[interpreted]/Fig9_GateRTL_VhdlTestbench.patt_cyc_per_s' \
  --pin 'fig9_cosim[compiled]/Fig9_GateBEH_VhdlTestbench.patt_cyc_per_s' \
  --pin 'fig9_cosim[compiled]/Fig9_GateRTL_VhdlTestbench.patt_cyc_per_s' \
  --pin 'fault/fault_vhdl_ref.faults_per_s' \
  --pin 'fault/fault_beh_unopt.faults_per_s' \
  --pin 'fault/fault_beh_opt.faults_per_s' \
  --pin 'fault/fault_rtl_unopt.faults_per_s' \
  --pin 'fault/fault_rtl_opt.faults_per_s' \
  --pin 'serve/serve_soak.sessions_samples_per_s' \
  "fig9_cosim[interpreted]=$TMP/interpreted.gbench.json" \
  "fig9_cosim[compiled]=$TMP/compiled.gbench.json" \
  "fault=$TMP/fault.gbench.json" \
  "serve=$TMP/serve.gbench.json"

python3 - "$OUT" <<'EOF'
import json, sys
data = json.load(open(sys.argv[1]))
b = data["benches"]
for design in ("GateBEH", "GateRTL"):
    key = f"Fig9_{design}_VhdlTestbench.patt_cyc_per_s"
    comp, interp = b["fig9_cosim[compiled]"][key], b["fig9_cosim[interpreted]"][key]
    print(f"  {design}: compiled {comp:.3g}/s vs interpreted {interp:.3g}/s "
          f"-> {comp / interp:.1f}x")
for slug in ("vhdl_ref", "beh_unopt", "beh_opt", "rtl_unopt", "rtl_opt"):
    fps = b["fault"][f"fault_{slug}.faults_per_s"]
    print(f"  fault {slug}: {fps:.3g} faults/s (full list, ppsfp)")
rate = b["serve"]["serve_soak.sessions_samples_per_s"]
print(f"  serve soak: {rate:.3g} sessions x samples/s (512 sessions, 4 lanes)")
EOF
