#!/usr/bin/env python3
"""Benchmark-trajectory ratchet: emit and compare BENCH_<date>.json files.

Two subcommands:

  emit --rev REV --out FILE [--pin BENCH/METRIC ...] NAME=GBENCH.json ...
      Folds one or more google-benchmark --json reports into the scflow
      trajectory schema.  Repetition runs (--repeat N) are collapsed to
      their best value per metric — max for rate counters and items/s,
      min for cpu_time — so host noise only ever makes numbers worse,
      never better.  Each snapshot carries its provenance (git rev,
      hostname, hardware thread count) so a committed baseline is
      attributable to the machine that minted it.  Schema:
        { "schema": "scflow-bench-1", "rev": ..., "date": ...,
          "host": ..., "hw_threads": ...,
          "pinned": ["bench/metric", ...],
          "benches": { bench: { metric: value } } }

  compare BASELINE CURRENT [--tolerance PCT]
      Fails (exit 1) when any metric pinned in BASELINE regresses by more
      than PCT percent (default 20) in CURRENT.  All pinned metrics are
      higher-is-better rates; a pinned metric missing from CURRENT is
      itself a failure.  Unpinned metrics are reported but never gate.
"""

import argparse
import datetime
import json
import os
import platform
import sys

# Counters recorded per benchmark (google-benchmark emits many more;
# these are the ones with trajectory value).
METRICS = ("patt_cyc_per_s", "cyc_per_s", "items_per_second", "faults_per_s",
           "sessions_samples_per_s")


def strip_name(raw):
    """Fig9_GateRTL_VhdlTestbench/min_time:1.500/process_time -> Fig9_..."""
    return raw.split("/")[0]


def fold_report(path):
    with open(path) as f:
        report = json.load(f)
    metrics = {}
    for b in report.get("benchmarks", []):
        if b.get("run_type") == "aggregate":
            continue
        name = strip_name(b["name"])
        for m in METRICS:
            if m in b:
                key = f"{name}.{m}"
                metrics[key] = max(metrics.get(key, 0.0), float(b[m]))
        key = f"{name}.cpu_time_ms"
        t = float(b["cpu_time"])
        if b.get("time_unit") == "ns":
            t /= 1e6
        metrics[key] = min(metrics.get(key, float("inf")), t)
    return metrics


def cmd_emit(args):
    benches = {}
    for spec in args.reports:
        name, _, path = spec.partition("=")
        if not path:
            sys.exit(f"emit: bad report spec '{spec}' (want NAME=FILE.json)")
        benches[name] = fold_report(path)
    for pin in args.pin:
        bench, _, metric = pin.partition("/")
        if metric not in benches.get(bench, {}):
            sys.exit(f"emit: pinned metric '{pin}' not present in this run")
    out = {
        "schema": "scflow-bench-1",
        "rev": args.rev,
        "date": datetime.date.today().isoformat(),
        "host": platform.node() or "unknown",
        "hw_threads": os.cpu_count() or 0,
        "pinned": list(args.pin),
        "benches": benches,
    }
    with open(args.out, "w") as f:
        json.dump(out, f, indent=2, sort_keys=True)
        f.write("\n")
    print(f"wrote {args.out} ({sum(len(v) for v in benches.values())} metrics,"
          f" {len(args.pin)} pinned)")
    return 0


def load_trajectory(path):
    with open(path) as f:
        data = json.load(f)
    if data.get("schema") != "scflow-bench-1":
        sys.exit(f"{path}: not a scflow-bench-1 trajectory file")
    return data


def cmd_compare(args):
    base = load_trajectory(args.baseline)
    cur = load_trajectory(args.current)
    tol = args.tolerance / 100.0
    failures = []
    for pin in base.get("pinned", []):
        bench, _, metric = pin.partition("/")
        old = base["benches"].get(bench, {}).get(metric)
        new = cur["benches"].get(bench, {}).get(metric)
        if old is None:
            continue  # pinned but absent from its own file: ignore
        if new is None:
            failures.append(f"{pin}: missing from {args.current}")
            continue
        delta = (new - old) / old if old else 0.0
        status = "ok"
        if delta < -tol:
            status = "REGRESSION"
            failures.append(f"{pin}: {old:.6g} -> {new:.6g} ({delta:+.1%})")
        print(f"  {pin}: {old:.6g} -> {new:.6g} ({delta:+.1%}) {status}")
    if failures:
        print(f"bench regression vs {base['rev'][:12]} "
              f"(tolerance {args.tolerance:.0f}%):", file=sys.stderr)
        for f_ in failures:
            print(f"  {f_}", file=sys.stderr)
        return 1
    print(f"bench trajectory ok vs {base['rev'][:12]} "
          f"({len(base.get('pinned', []))} pinned metrics, "
          f"tolerance {args.tolerance:.0f}%)")
    return 0


def main():
    p = argparse.ArgumentParser(description=__doc__)
    sub = p.add_subparsers(dest="cmd", required=True)

    e = sub.add_parser("emit", help="fold gbench --json reports into a trajectory file")
    e.add_argument("--rev", required=True)
    e.add_argument("--out", required=True)
    e.add_argument("--pin", action="append", default=[],
                   metavar="BENCH/METRIC", help="headline metric to ratchet")
    e.add_argument("reports", nargs="+", metavar="NAME=FILE.json")
    e.set_defaults(fn=cmd_emit)

    c = sub.add_parser("compare", help="gate CURRENT against BASELINE's pinned metrics")
    c.add_argument("baseline")
    c.add_argument("current")
    c.add_argument("--tolerance", type=float, default=20.0,
                   help="allowed regression in percent (default 20)")
    c.set_defaults(fn=cmd_compare)

    args = p.parse_args()
    sys.exit(args.fn(args))


if __name__ == "__main__":
    main()
