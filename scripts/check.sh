#!/usr/bin/env bash
# Full pre-merge check: the tier-1 build + test cycle, the formal CEC and
# stuck-at fault-coverage gates over the synthesis flow, the run-telemetry
# gate (two identical flow runs must produce ledgers scflow_report diffs
# as metric-identical, timestamps excluded), the benchmark
# trajectory ratchet (pinned throughput metrics vs the latest committed
# BENCH_*.json, >20% regression fails), then the same
# test suite under AddressSanitizer + UBSan (-DSCFLOW_SANITIZE=ON), then
# the threaded simulator paths — including the concurrent fault-campaign
# runner — under ThreadSanitizer (-DSCFLOW_SANITIZE=thread) so both
# sanitizer wirings are actually exercised on every change.
#
# Usage: scripts/check.sh [--skip-sanitize]
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS=$(nproc 2>/dev/null || echo 4)
SKIP_SANITIZE=0
[[ "${1:-}" == "--skip-sanitize" ]] && SKIP_SANITIZE=1

RAN_PASSES=()

echo "== tier-1: configure + build + ctest (build/) =="
cmake -B build -S . >/dev/null
cmake --build build -j"$JOBS"
ctest --test-dir build --output-on-failure -j"$JOBS"
RAN_PASSES+=("tier-1")

echo "== cec: formal equivalence gates over the full synthesis flow =="
# Every refinement step (gate opt, scan insertion) of all five Fig. 10
# designs is proven by the SAT-based CEC engine; a counterexample aborts
# with a non-zero exit.  The engine's own unit suite (SAT solver, AIG,
# miter construction, fuzz shards) runs via ctest above and again under
# ASan+UBSan below.
(cd build/examples && ./synthesis_flow --cec >/dev/null)
RAN_PASSES+=("cec")

echo "== fault: full-list PPSFP campaigns, scan vs pre-scan coverage gate =="
# All five Fig. 10 designs run the shared-fault-list campaign pair over
# the FULL collapsed fault population on the PPSFP bit-parallel engine
# (no sampling); the gate fails unless every population is simulated
# whole and scan coverage strictly exceeds the scan-stripped twin's on
# every design.  The fault engine's unit suite (collapse rules, overlay
# clamping, PPSFP-vs-event-driven differential, thread-count determinism,
# budget degradation, SEU divergence) runs via ctest above and again
# under ASan+UBSan below.
build/examples/fault_campaign --check >/dev/null
RAN_PASSES+=("fault")

echo "== serve: streaming SRC soak, 1000 sessions x thread sweep {1,2,4,8} =="
# The session service runs the seeded workload over all eight rate pairs
# (the four paper pairs included) at every lane count, asserting the
# zero-loss conservation laws, the round-robin starvation bound, and that
# every session's output stream hashes bit-identically across thread
# counts.  The service's unit suite (lifecycle, backpressure, fairness,
# determinism) runs via ctest above and again under the sanitizers below.
build/tools/src_serve --check >/dev/null
RAN_PASSES+=("serve")

echo "== chaos: seeded fault-injection soak (32 seeds) + snapshot round-trip =="
# The resilience gate: every seed's ChaosPlan injects lane stalls,
# disconnects, oversized pushes, ring storms and allocation failures as
# pure functions of the seed, across the same thread sweep — surviving
# sessions must hash bit-identically and the fault census itself must be
# scheduling-invariant.  Over the 32-seed soak every fault class must
# fire at least once.  Then the crash-consistency gate: a mid-stream
# snapshot restored at a different lane count must continue
# byte-identically, and corrupted images must be rejected with a
# diagnostic.  The chaos ledger lands in build/chaos/ (CI uploads it) —
# NOT build/obs/, which the obs pass wipes.
CHAOS_DIR="$(pwd)/build/chaos"
rm -rf "$CHAOS_DIR" && mkdir -p "$CHAOS_DIR"
build/tools/src_serve --chaos-soak 32 --seed 1 \
  --ledger "$CHAOS_DIR/chaos_ledger.jsonl" --report "$CHAOS_DIR/chaos_report.json"
build/tools/src_serve --snapshot-roundtrip >/dev/null
build/tools/scflow_report validate "$CHAOS_DIR/chaos_ledger.jsonl" >/dev/null
RAN_PASSES+=("chaos")

echo "== obs: run ledger determinism + scflow_report render/diff gate =="
# One flow run = refinement_flow (report + Perfetto trace + ledger), then
# synthesis_flow --cec appending to the same ledger JSONL.  Two such runs
# must produce ledgers that scflow_report diff calls metric-identical —
# timestamps and durations are excluded by the schema's "_ns" rule, every
# counter/hash/histogram must match exactly.  The artifacts land in
# build/obs/ (CI uploads them).
OBS_DIR="$(pwd)/build/obs"
rm -rf "$OBS_DIR" && mkdir -p "$OBS_DIR"
export SCFLOW_GIT_REV="$(git rev-parse HEAD)"
for run in a b; do
  build/examples/refinement_flow --report "$OBS_DIR/report_$run.json" \
    --trace "$OBS_DIR/trace_$run.json" --ledger "$OBS_DIR/ledger_$run.jsonl" >/dev/null
  (cd build/examples && ./synthesis_flow --cec --ledger "$OBS_DIR/ledger_$run.jsonl" >/dev/null)
done
build/tools/scflow_report validate "$OBS_DIR"/ledger_a.jsonl "$OBS_DIR"/ledger_b.jsonl \
  "$OBS_DIR"/report_a.json "$OBS_DIR"/trace_a.json
build/tools/scflow_report show "$OBS_DIR/ledger_a.jsonl" >/dev/null
build/tools/scflow_report diff "$OBS_DIR/ledger_a.jsonl" "$OBS_DIR/ledger_b.jsonl"
RAN_PASSES+=("obs")

echo "== bench: trajectory ratchet vs latest committed BENCH_*.json =="
# Re-measures the pinned headline metrics (gate-cosim pattern throughput
# on both hdlsim backends) and fails on a >20% regression against the
# newest committed trajectory file.  The benches run WITHOUT --ledger or
# --trace, so this doubles as the instrumentation-off overhead guard: if
# telemetry hooks ever leak cost into the uninstrumented paths, the
# pinned metrics regress and this gate trips.  scripts/bench_trajectory.sh is also
# how a new BENCH_<date>.json gets minted when the numbers move for a
# good reason.
BASELINE=$(git ls-files 'BENCH_*.json' | sort | tail -1)
if [[ -z "$BASELINE" ]]; then
  echo "no committed BENCH_*.json baseline; run scripts/bench_trajectory.sh to mint one"
  exit 1
fi
scripts/bench_trajectory.sh "$(pwd)/build/bench_current.json"
python3 scripts/bench_compare.py compare "$BASELINE" build/bench_current.json
RAN_PASSES+=("bench")

if [[ "$SKIP_SANITIZE" == 1 ]]; then
  echo "== sanitize passes skipped (--skip-sanitize) =="
else
  echo "== sanitize: ASan+UBSan configure + build + ctest (build-asan/) =="
  cmake -B build-asan -S . -DSCFLOW_SANITIZE=ON >/dev/null
  cmake --build build-asan -j"$JOBS"
  # halt_on_error keeps UBSan findings fatal so ctest actually fails on them.
  UBSAN_OPTIONS=halt_on_error=1 ASAN_OPTIONS=detect_leaks=1 \
    ctest --test-dir build-asan --output-on-failure -j"$JOBS"
  RAN_PASSES+=("ASan+UBSan")

  echo "== sanitize: TSan build + threaded simulator tests (build-tsan/) =="
  # Only the targets that exercise the worker pool / parallel sweep are
  # built and run (directly, not via ctest: gtest_discover_tests would
  # re-register the whole suite for a partial build).  The cosim tests are
  # excluded — the minisc kernel's ucontext fibers are outside TSan's
  # supported threading model.
  cmake -B build-tsan -S . -DSCFLOW_SANITIZE=thread >/dev/null
  cmake --build build-tsan -j"$JOBS" --target \
    test_gate_parallel test_gate_level test_gate_alloc test_fault \
    test_ppsfp test_fuzz_equivalence test_compiled_sim test_serve test_resilience
  for t in test_gate_parallel test_gate_level test_gate_alloc; do
    echo "-- TSan: $t"
    TSAN_OPTIONS=halt_on_error=1 "build-tsan/tests/$t"
  done
  # test_fault minus the five-design full-population parity sweep (minutes
  # under TSan; its thread coverage is the campaign runner, which the
  # remaining cases and test_ppsfp's differential already drive hard).
  echo "-- TSan: test_fault"
  TSAN_OPTIONS=halt_on_error=1 build-tsan/tests/test_fault \
    --gtest_filter='-Campaign.PpsfpFullListReproducesSampledCoverageOnFig10'
  # The PPSFP engine's differential oracle across thread counts {1,2,4,8}
  # on both engines — the batch-granularity concurrency of the new path.
  echo "-- TSan: test_ppsfp"
  TSAN_OPTIONS=halt_on_error=1 build-tsan/tests/test_ppsfp
  # The compiled backend's threaded path: BatchRunner lanes sharing one
  # immutable CompiledProgram across worker threads.
  echo "-- TSan: test_compiled_sim (batch runner)"
  TSAN_OPTIONS=halt_on_error=1 build-tsan/tests/test_compiled_sim \
    --gtest_filter='CompiledBatch.*'
  # The streaming SRC service: SPSC rings crossed by client threads, the
  # multi-lane session scheduler, and the concurrent push/pull-while-step
  # case — the service's entire threading contract under the race detector.
  echo "-- TSan: test_serve"
  TSAN_OPTIONS=halt_on_error=1 build-tsan/tests/test_serve
  # The resilience layer under the race detector: the SPSC ring stress,
  # eviction/lease bookkeeping around live client threads, and the
  # chaos-enabled multi-lane runs (lane-stall injection hammers the
  # lane_stalls_ atomic from every worker).
  echo "-- TSan: test_resilience"
  TSAN_OPTIONS=halt_on_error=1 build-tsan/tests/test_resilience
  # The fuzz oracle suite is heavyweight under TSan; one shard (125 random
  # netlists, random lane counts) keeps the race coverage without the cost.
  echo "-- TSan: test_fuzz_equivalence (shard 0)"
  TSAN_OPTIONS=halt_on_error=1 build-tsan/tests/test_fuzz_equivalence \
    --gtest_filter='Shards/GateFuzzTableVsReference.*/0'
  RAN_PASSES+=("TSan")
fi

echo "== all checks passed: ${RAN_PASSES[*]} =="
