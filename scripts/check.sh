#!/usr/bin/env bash
# Full pre-merge check: the tier-1 build + test cycle, then the same test
# suite under AddressSanitizer + UBSan (-DSCFLOW_SANITIZE=ON) so the
# sanitizer wiring is actually exercised on every change.
#
# Usage: scripts/check.sh [--skip-sanitize]
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS=$(nproc 2>/dev/null || echo 4)
SKIP_SANITIZE=0
[[ "${1:-}" == "--skip-sanitize" ]] && SKIP_SANITIZE=1

echo "== tier-1: configure + build + ctest (build/) =="
cmake -B build -S . >/dev/null
cmake --build build -j"$JOBS"
ctest --test-dir build --output-on-failure -j"$JOBS"

if [[ "$SKIP_SANITIZE" == 1 ]]; then
  echo "== sanitize pass skipped (--skip-sanitize) =="
  exit 0
fi

echo "== sanitize: ASan+UBSan configure + build + ctest (build-asan/) =="
cmake -B build-asan -S . -DSCFLOW_SANITIZE=ON >/dev/null
cmake --build build-asan -j"$JOBS"
# halt_on_error keeps UBSan findings fatal so ctest actually fails on them.
UBSAN_OPTIONS=halt_on_error=1 ASAN_OPTIONS=detect_leaks=1 \
  ctest --test-dir build-asan --output-on-failure -j"$JOBS"

echo "== all checks passed =="
