// Ablation: minisc kernel primitive costs — the mechanisms behind the
// Fig. 8 performance ladder.  Thread (fiber) context switches are the
// dominant cost of SC_THREAD-style modelling; method processes and signal
// updates are what the clocked levels pay per cycle.
#include <benchmark/benchmark.h>

#include "bench_json_main.hpp"

#include "kernel/clock.hpp"
#include "kernel/module.hpp"
#include "kernel/signal.hpp"
#include "kernel/simulation.hpp"

namespace {

using namespace minisc;

/// Two threads ping-ponging through events: 2 context switches per round.
void Kernel_ThreadPingPong(benchmark::State& state) {
  std::uint64_t total = 0;
  for (auto _ : state) {
    state.PauseTiming();
    Simulation sim;
    Event ping(sim, "ping"), pong(sim, "pong");
    constexpr int kRounds = 10000;

    class M : public Module {
     public:
      M(Simulation& sim, Event& ping, Event& pong) : Module(sim, "m") {
        thread("a", [this, &ping, &pong] {
          wait(Time::ns(1));  // let the partner reach its first wait
          for (int i = 0; i < kRounds; ++i) {
            ping.notify();
            wait(pong);
          }
        });
        thread("b", [this, &ping, &pong] {
          for (int i = 0; i < kRounds; ++i) {
            wait(ping);
            pong.notify();
          }
        });
      }
    } m(sim, ping, pong);
    state.ResumeTiming();
    sim.run();
    state.PauseTiming();
    total += sim.stats().context_switches;
    state.ResumeTiming();
  }
  state.counters["ctx_switch_per_s"] =
      benchmark::Counter(static_cast<double>(total), benchmark::Counter::kIsRate);
}

/// A method process triggered by a self-rescheduling timed event.
void Kernel_MethodActivations(benchmark::State& state) {
  std::uint64_t total = 0;
  for (auto _ : state) {
    state.PauseTiming();
    Simulation sim;
    Event tick(sim, "tick");
    int count = 0;

    class M : public Module {
     public:
      M(Simulation& sim, Event& tick, int& count) : Module(sim, "m") {
        method("m", [&sim, &tick, &count] {
          if (++count < 20000) tick.notify(Time::ns(10));
          // method re-fires through the timed queue
        }).sensitive(tick);
      }
    } m(sim, tick, count);
    state.ResumeTiming();
    sim.run();
    state.PauseTiming();
    total += sim.stats().process_activations;
    state.ResumeTiming();
  }
  state.counters["activation_per_s"] =
      benchmark::Counter(static_cast<double>(total), benchmark::Counter::kIsRate);
}

/// Clock generation plus one clocked method — the per-cycle floor every
/// RTL/behavioural model pays.  Parameterised by the instrumentation flag:
/// comparing the two rows measures the full cost of the obs::Probe
/// counters on the kernel hot path (acceptance target: < 3 %).
void clocked_method_cycle(benchmark::State& state, bool instrumented) {
  std::uint64_t total = 0;
  for (auto _ : state) {
    state.PauseTiming();
    Simulation sim;
    sim.set_instrumentation(instrumented);
    Clock clk(sim, "clk", Time::ns(40));
    std::uint64_t edges = 0;

    class M : public Module {
     public:
      M(Simulation& sim, Clock& clk, std::uint64_t& edges) : Module(sim, "m") {
        method("fsm", [&edges] { ++edges; }).sensitive(clk.posedge_event());
      }
    } m(sim, clk, edges);
    state.ResumeTiming();
    sim.run_until(Time::us(400));  // 10000 cycles
    state.PauseTiming();
    total += clk.posedge_count();
    state.ResumeTiming();
  }
  state.counters["cyc_per_s"] =
      benchmark::Counter(static_cast<double>(total), benchmark::Counter::kIsRate);
}

void Kernel_ClockedMethodCycle(benchmark::State& state) {
  clocked_method_cycle(state, true);
}
void Kernel_ClockedMethodCycle_NoInstrumentation(benchmark::State& state) {
  clocked_method_cycle(state, false);
}

/// Signal write+update+notification cost.
void Kernel_SignalUpdates(benchmark::State& state) {
  std::uint64_t total = 0;
  for (auto _ : state) {
    state.PauseTiming();
    Simulation sim;
    Signal<int> sig(sim, nullptr, "s", 0);

    class M : public Module {
     public:
      M(Simulation& sim, Signal<int>& sig) : Module(sim, "m") {
        thread("w", [this, &sig] {
          for (int i = 1; i <= 20000; ++i) {
            sig.write(i);
            wait(minisc::Time::ns(1));
          }
        });
      }
    } m(sim, sig);
    state.ResumeTiming();
    sim.run();
    state.PauseTiming();
    total += sim.stats().signal_updates;
    state.ResumeTiming();
  }
  state.counters["update_per_s"] =
      benchmark::Counter(static_cast<double>(total), benchmark::Counter::kIsRate);
}

BENCHMARK(Kernel_ThreadPingPong)->Unit(benchmark::kMillisecond);
BENCHMARK(Kernel_MethodActivations)->Unit(benchmark::kMillisecond);
BENCHMARK(Kernel_ClockedMethodCycle)->Unit(benchmark::kMillisecond);
BENCHMARK(Kernel_ClockedMethodCycle_NoInstrumentation)->Unit(benchmark::kMillisecond);
BENCHMARK(Kernel_SignalUpdates)->Unit(benchmark::kMillisecond);

}  // namespace

SCFLOW_BENCHMARK_MAIN()
