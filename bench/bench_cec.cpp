// CEC cost of the formal gates guarding each refinement step: proving the
// gate-optimised and scan-inserted SRC netlists equivalent to their
// inputs, plus the RTL-vs-gates lowering check.  Counters expose where the
// engine spends its effort (structural hashing vs simulation vs SAT).
//
// With `--ledger FILE` / `--trace FILE` every proof also records into the
// process telemetry session: one run-ledger entry per check (input hashes,
// options fingerprint, SAT effort counters, per-call conflict histogram)
// plus the "<bench>.sat_call_conflicts" histogram in the registry.
#include <benchmark/benchmark.h>

#include "bench_json_main.hpp"

#include "formal/cec.hpp"
#include "hls/src_beh.hpp"
#include "netlist/lower.hpp"
#include "netlist/opt.hpp"
#include "rtl/passes.hpp"
#include "rtl/src_design.hpp"

namespace {

using namespace scflow;

// Telemetry routing: benches pass the shared session registry (nullptr
// when --ledger/--trace are absent, keeping the timed loop bare) and a
// per-bench metric prefix so ledger entries name the check they came from.
formal::CecOptions with_prefix(formal::CecOptions opt, const char* prefix) {
  opt.metric_prefix = prefix;
  return opt;
}

void report(benchmark::State& state, const formal::CecResult& res) {
  state.counters["aig_nodes"] = static_cast<double>(res.stats.aig_nodes);
  state.counters["compare_bits"] = static_cast<double>(res.stats.compare_bits);
  state.counters["bits_structural"] = static_cast<double>(res.stats.bits_structural);
  state.counters["bits_sat"] = static_cast<double>(res.stats.bits_sat_proved);
  state.counters["sat_calls"] = static_cast<double>(res.stats.sat_calls);
  state.counters["sat_conflicts"] = static_cast<double>(res.stats.sat_conflicts);
  state.counters["sweep_merges"] = static_cast<double>(res.stats.sweep_merges);
}

// The flow's own opt gate: word-level passes run before lowering (as in
// flow::synthesize_to_gates), so the pre/post netlists are structurally
// close and the check is cheap.
void cec_opt_bench(benchmark::State& state, const rtl::Design& raw,
                   const char* prefix) {
  const rtl::Design design = rtl::run_passes(raw, {});
  const nl::Netlist pre = nl::lower_to_gates(design, {});
  const nl::Netlist post = nl::optimize_gates(pre);
  formal::CecResult res;
  for (auto _ : state) {
    res = formal::check_equivalence(pre, post, benchutil::telemetry_registry(),
                                    with_prefix({}, prefix));
    if (!res.equivalent()) state.SkipWithError("not equivalent");
    benchmark::DoNotOptimize(res);
  }
  report(state, res);
}

// Stress variant: skip the word-level passes, so gate optimisation has
// real constant folding and restructuring to do and the miter leans on
// the sweep + SAT stages instead of collapsing structurally.  (Only run
// for the hand-RTL design: the HLS-generated designs are dominated by
// FSM constants, and without word passes their miters explode into
// multiplier-vs-folded-constant proofs that SAT grinds on for minutes —
// a check no step of the real flow ever performs.)
void cec_opt_stress_bench(benchmark::State& state, const rtl::Design& design,
                          const char* prefix) {
  const nl::Netlist pre = nl::lower_to_gates(design, {});
  const nl::Netlist post = nl::optimize_gates(pre);
  formal::CecResult res;
  for (auto _ : state) {
    res = formal::check_equivalence(pre, post, benchutil::telemetry_registry(),
                                    with_prefix({}, prefix));
    if (!res.equivalent()) state.SkipWithError("not equivalent");
    benchmark::DoNotOptimize(res);
  }
  report(state, res);
}

void cec_scan_bench(benchmark::State& state, const rtl::Design& design,
                    const char* prefix) {
  const nl::Netlist pre = nl::optimize_gates(nl::lower_to_gates(design, {}));
  nl::Netlist post = pre;
  nl::insert_scan_chain(post);
  formal::CecResult res;
  for (auto _ : state) {
    res = formal::check_equivalence(
        pre, post, benchutil::telemetry_registry(),
        with_prefix(formal::CecOptions::scan_modulo(), prefix));
    if (!res.equivalent()) state.SkipWithError("not equivalent");
    benchmark::DoNotOptimize(res);
  }
  report(state, res);
}

void cec_rtl_bench(benchmark::State& state, const rtl::Design& design,
                   const char* prefix) {
  const nl::Netlist gates = nl::optimize_gates(nl::lower_to_gates(design, {}));
  formal::CecResult res;
  for (auto _ : state) {
    res = formal::check_rtl_vs_netlist(design, gates,
                                       benchutil::telemetry_registry(),
                                       with_prefix({}, prefix));
    if (!res.equivalent()) state.SkipWithError("not equivalent");
    benchmark::DoNotOptimize(res);
  }
  report(state, res);
}

void Cec_Opt_RtlOpt(benchmark::State& s) {
  cec_opt_bench(s, rtl::build_src_design(rtl::rtl_opt_config()), "cec.opt.rtl_opt");
}
void Cec_Opt_RtlUnopt(benchmark::State& s) {
  cec_opt_bench(s, rtl::build_src_design(rtl::rtl_unopt_config()),
                "cec.opt.rtl_unopt");
}
void Cec_Opt_BehOpt(benchmark::State& s) {
  cec_opt_bench(s, hls::build_beh_src_design(hls::beh_opt_config(), nullptr),
                "cec.opt.beh_opt");
}
void Cec_OptStress_RtlOpt(benchmark::State& s) {
  cec_opt_stress_bench(s, rtl::build_src_design(rtl::rtl_opt_config()),
                       "cec.opt_stress.rtl_opt");
}
void Cec_Scan_RtlOpt(benchmark::State& s) {
  cec_scan_bench(s, rtl::build_src_design(rtl::rtl_opt_config()),
                 "cec.scan.rtl_opt");
}
void Cec_RtlVsGates_RtlOpt(benchmark::State& s) {
  cec_rtl_bench(s, rtl::build_src_design(rtl::rtl_opt_config()),
                "cec.rtl_vs_gates.rtl_opt");
}

BENCHMARK(Cec_Opt_RtlOpt)->Unit(benchmark::kMillisecond)->Iterations(5);
BENCHMARK(Cec_Opt_RtlUnopt)->Unit(benchmark::kMillisecond)->Iterations(5);
BENCHMARK(Cec_Opt_BehOpt)->Unit(benchmark::kMillisecond)->Iterations(5);
BENCHMARK(Cec_OptStress_RtlOpt)->Unit(benchmark::kMillisecond)->Iterations(2);
BENCHMARK(Cec_Scan_RtlOpt)->Unit(benchmark::kMillisecond)->Iterations(5);
BENCHMARK(Cec_RtlVsGates_RtlOpt)->Unit(benchmark::kMillisecond)->Iterations(5);

}  // namespace

SCFLOW_BENCHMARK_MAIN()
