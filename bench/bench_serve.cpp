// Streaming SRC service throughput: a fixed seeded workload (sessions
// spread over eight rate pairs, the four paper pairs included) is pushed
// through SrcService with a bounded step cap, and the aggregate
// conversion rate is reported as sessions x samples/s — input samples
// converted per wall second across all concurrent sessions.
//
// `--gbench-json FILE` emits a Google-Benchmark-shaped JSON with one
// "serve_soak" entry per repeat carrying `sessions_samples_per_s` — the
// trajectory metric scripts/bench_compare.py ratchets; `--repeat N`
// reruns the workload so the ratchet can take the max.  `--sessions`,
// `--samples` and `--threads` resize the workload (the pinned trajectory
// run uses the defaults).
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iterator>
#include <string>
#include <vector>

#include "dsp/stimulus.hpp"
#include "serve/src_service.hpp"

namespace {

using scflow::dsp::StereoSample;
using scflow::serve::ServiceOptions;
using scflow::serve::SessionId;
using scflow::serve::SrcService;

constexpr std::uint32_t kRatioTable[][2] = {
    {44'100, 48'000}, {48'000, 44'100}, {48'000, 48'000}, {32'000, 48'000},
    {8'000, 48'000},  {48'000, 8'000},  {22'050, 48'000}, {44'100, 8'000},
};
constexpr std::size_t kRatioCount = std::size(kRatioTable);

struct RunResult {
  std::uint64_t wall_ns = 0;
  std::uint64_t samples_in = 0;
};

RunResult run_workload(std::size_t n_sessions, std::size_t n_samples,
                       unsigned threads, std::uint64_t seed) {
  ServiceOptions opt;
  opt.threads = threads;
  opt.max_sessions = n_sessions;
  opt.input_ring = 256;
  opt.output_ring = 1'024;
  opt.work_quantum = 128;
  opt.max_sessions_per_step = 128;
  SrcService service(opt);

  std::vector<SessionId> ids(n_sessions);
  std::vector<std::vector<StereoSample>> stimuli(n_sessions);
  for (std::size_t i = 0; i < n_sessions; ++i) {
    const auto& ratio = kRatioTable[i % kRatioCount];
    ids[i] = service.open({ratio[0], ratio[1]});
    stimuli[i] = scflow::dsp::make_noise_stimulus(n_samples, seed + i);
  }

  std::vector<std::size_t> fed(n_sessions, 0);
  std::vector<StereoSample> out(512);
  const auto t0 = std::chrono::steady_clock::now();
  bool progress = true;
  while (progress) {
    progress = false;
    for (std::size_t i = 0; i < n_sessions; ++i) {
      if (fed[i] < n_samples) {
        fed[i] += service.push(ids[i], stimuli[i].data() + fed[i],
                               n_samples - fed[i]);
        if (fed[i] < n_samples) progress = true;
      }
    }
    if (service.step() > 0) progress = true;
    for (std::size_t i = 0; i < n_sessions; ++i) {
      while (service.pull(ids[i], out.data(), out.size()) > 0) progress = true;
    }
  }
  const auto t1 = std::chrono::steady_clock::now();

  RunResult r;
  r.wall_ns = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count());
  r.samples_in = static_cast<std::uint64_t>(n_sessions) * n_samples;
  return r;
}

// One gbench "iteration" entry per repeat, name "serve_soak", counter
// sessions_samples_per_s.  Shape matches scripts/bench_compare.py
// (best-of-repeats per name, then pin comparison).
bool write_gbench_json(const std::string& path,
                       const std::vector<RunResult>& runs,
                       std::size_t sessions, unsigned threads) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  std::fprintf(f, "{\n  \"context\": {\"sessions\": %zu, \"threads\": %u},\n",
               sessions, threads);
  std::fprintf(f, "  \"benchmarks\": [\n");
  bool first = true;
  for (const auto& r : runs) {
    if (r.wall_ns == 0) continue;
    const double rate =
        static_cast<double>(r.samples_in) / (static_cast<double>(r.wall_ns) / 1e9);
    if (!first) std::fprintf(f, ",\n");
    first = false;
    std::fprintf(f,
                 "    {\"name\": \"serve_soak\", \"run_type\": \"iteration\", "
                 "\"iterations\": 1, \"real_time\": %.1f, \"cpu_time\": %.1f, "
                 "\"time_unit\": \"ns\", \"sessions_samples_per_s\": %.3f}",
                 static_cast<double>(r.wall_ns), static_cast<double>(r.wall_ns),
                 rate);
  }
  std::fprintf(f, "\n  ]\n}\n");
  std::fclose(f);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t n_sessions = 512;
  std::size_t n_samples = 2'000;
  unsigned threads = 4;
  std::uint64_t seed = 1;
  int repeat = 1;
  std::string gbench_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--sessions") == 0 && i + 1 < argc) {
      n_sessions = std::strtoul(argv[++i], nullptr, 10);
    } else if (std::strncmp(argv[i], "--sessions=", 11) == 0) {
      n_sessions = std::strtoul(argv[i] + 11, nullptr, 10);
    } else if (std::strcmp(argv[i], "--samples") == 0 && i + 1 < argc) {
      n_samples = std::strtoul(argv[++i], nullptr, 10);
    } else if (std::strncmp(argv[i], "--samples=", 10) == 0) {
      n_samples = std::strtoul(argv[i] + 10, nullptr, 10);
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      threads = static_cast<unsigned>(std::strtoul(argv[++i], nullptr, 10));
    } else if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      threads = static_cast<unsigned>(std::strtoul(argv[i] + 10, nullptr, 10));
    } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strncmp(argv[i], "--seed=", 7) == 0) {
      seed = std::strtoull(argv[i] + 7, nullptr, 10);
    } else if (std::strcmp(argv[i], "--gbench-json") == 0 && i + 1 < argc) {
      gbench_path = argv[++i];
    } else if (std::strncmp(argv[i], "--gbench-json=", 14) == 0) {
      gbench_path = argv[i] + 14;
    } else if (std::strcmp(argv[i], "--repeat") == 0 && i + 1 < argc) {
      repeat = std::max(1, static_cast<int>(std::strtol(argv[++i], nullptr, 10)));
    } else if (std::strncmp(argv[i], "--repeat=", 9) == 0) {
      repeat = std::max(1, static_cast<int>(std::strtol(argv[i] + 9, nullptr, 10)));
    } else {
      std::fprintf(stderr,
                   "usage: %s [--sessions N] [--samples N] [--threads N] "
                   "[--seed S] [--gbench-json FILE] [--repeat N]\n",
                   argv[0]);
      return 2;
    }
  }

  std::vector<RunResult> runs;
  for (int rep = 0; rep < repeat; ++rep) {
    runs.push_back(run_workload(n_sessions, n_samples, threads, seed));
    const auto& r = runs.back();
    std::printf("repeat %d: %zu sessions x %zu samples in %.1f ms -> "
                "%.0f sessions x samples/s\n",
                rep, n_sessions, n_samples,
                static_cast<double>(r.wall_ns) / 1e6,
                static_cast<double>(r.samples_in) /
                    (static_cast<double>(r.wall_ns) / 1e9));
  }

  if (!gbench_path.empty()) {
    if (!write_gbench_json(gbench_path, runs, n_sessions, threads)) {
      std::fprintf(stderr, "error: cannot write %s\n", gbench_path.c_str());
      return 1;
    }
    std::printf("gbench json: %s\n", gbench_path.c_str());
  }
  return 0;
}
