// Shared main() for the google-benchmark binaries: adds a `--json FILE`
// convenience flag (for scripted runs and the EXPERIMENTS.md tables) on
// top of the standard benchmark flags; it expands to
// --benchmark_out=FILE --benchmark_out_format=json.  The per-mechanism
// observability counters each bench attaches via state.counters land in
// that JSON next to the timing numbers.  Every run stamps its provenance
// (git SHA via SCFLOW_GIT_REV, hostname, thread counts) into the
// benchmark context, so emitted BENCH_*.json artifacts are attributable.
//
// Also understands `--threads N` (or `--threads=N`): the worker-lane
// count the simulator benches pass to the parallel gate engine and the
// sharded batch runner (0 = one lane per hardware thread, default 1).
//
// `--backend NAME` selects the gate-simulation engine for benches that
// support both ("interpreted" = event-driven GateSim, "compiled" =
// bit-parallel CompiledSim bytecode); `--repeat N` expands to
// --benchmark_repetitions=N so scripted runs can take a min-of-N against
// scheduler noise (the trajectory script's extraction does exactly that).
//
// `--ledger FILE` / `--trace FILE` turn on run telemetry: an obs::Session
// is created for the process, benches that support it route engine calls
// through its registry (see telemetry_session()), and the run ledger /
// Perfetto trace are written after the benchmarks finish.  Off by
// default — the pinned bench metrics measure the uninstrumented loop.
#pragma once

#include <benchmark/benchmark.h>

#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "obs/session.hpp"

namespace scflow::benchutil {

namespace detail {
inline unsigned& threads_slot() {
  static unsigned t = 1;
  return t;
}
inline std::string& backend_slot() {
  static std::string b = "interpreted";
  return b;
}
inline std::string& ledger_path_slot() {
  static std::string p;
  return p;
}
inline std::string& trace_path_slot() {
  static std::string p;
  return p;
}
inline std::unique_ptr<obs::Session>& session_slot() {
  static std::unique_ptr<obs::Session> s;
  return s;
}
}  // namespace detail

/// Lane count selected with --threads (1 when the flag is absent).
inline unsigned requested_threads() { return detail::threads_slot(); }

/// Engine name selected with --backend ("interpreted" when absent).
inline const std::string& requested_backend() { return detail::backend_slot(); }

/// The process-wide telemetry session, or nullptr when neither --ledger
/// nor --trace was given.  Benches pass its registry into engine calls so
/// ledger entries / histograms / spans accumulate across iterations.
inline obs::Session* telemetry_session() { return detail::session_slot().get(); }
/// Convenience: the session's registry, or nullptr when telemetry is off.
inline obs::Registry* telemetry_registry() {
  obs::Session* s = telemetry_session();
  return s != nullptr ? &s->registry : nullptr;
}

inline int run_benchmark_main(int argc, char** argv) {
  std::vector<std::string> args(argv, argv + argc);
  std::vector<std::string> expanded;
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "--json" && i + 1 < args.size()) {
      expanded.push_back("--benchmark_out=" + args[++i]);
      expanded.push_back("--benchmark_out_format=json");
    } else if (args[i].rfind("--json=", 0) == 0) {
      expanded.push_back("--benchmark_out=" + args[i].substr(7));
      expanded.push_back("--benchmark_out_format=json");
    } else if (args[i] == "--threads" && i + 1 < args.size()) {
      detail::threads_slot() = static_cast<unsigned>(std::strtoul(args[++i].c_str(), nullptr, 10));
    } else if (args[i].rfind("--threads=", 0) == 0) {
      detail::threads_slot() =
          static_cast<unsigned>(std::strtoul(args[i].c_str() + 10, nullptr, 10));
    } else if (args[i] == "--backend" && i + 1 < args.size()) {
      detail::backend_slot() = args[++i];
    } else if (args[i].rfind("--backend=", 0) == 0) {
      detail::backend_slot() = args[i].substr(10);
    } else if (args[i] == "--repeat" && i + 1 < args.size()) {
      expanded.push_back("--benchmark_repetitions=" + args[++i]);
    } else if (args[i].rfind("--repeat=", 0) == 0) {
      expanded.push_back("--benchmark_repetitions=" + args[i].substr(9));
    } else if (args[i] == "--ledger" && i + 1 < args.size()) {
      detail::ledger_path_slot() = args[++i];
    } else if (args[i].rfind("--ledger=", 0) == 0) {
      detail::ledger_path_slot() = args[i].substr(9);
    } else if (args[i] == "--trace" && i + 1 < args.size()) {
      detail::trace_path_slot() = args[++i];
    } else if (args[i].rfind("--trace=", 0) == 0) {
      detail::trace_path_slot() = args[i].substr(8);
    } else {
      expanded.push_back(args[i]);
    }
  }
  if (!detail::ledger_path_slot().empty() || !detail::trace_path_slot().empty())
    detail::session_slot() = std::make_unique<obs::Session>();

  std::vector<char*> cargs;
  cargs.reserve(expanded.size());
  for (auto& a : expanded) cargs.push_back(a.data());
  int cargc = static_cast<int>(cargs.size());
  benchmark::Initialize(&cargc, cargs.data());
  if (benchmark::ReportUnrecognizedArguments(cargc, cargs.data())) return 1;

  // Provenance stamp: lands in the "context" object of every --json
  // artifact, so committed BENCH_*.json snapshots say where they ran.
  const std::string tool = args.empty() ? "bench" : args[0];
  const obs::RunMetadata meta = obs::collect_run_metadata(tool);
  benchmark::AddCustomContext("scflow_rev", meta.rev);
  benchmark::AddCustomContext("scflow_host", meta.host);
  benchmark::AddCustomContext("scflow_hw_threads", std::to_string(meta.hw_threads));
  benchmark::AddCustomContext("scflow_threads", std::to_string(requested_threads()));
  benchmark::AddCustomContext("scflow_backend", requested_backend());

  benchmark::RunSpecifiedBenchmarks();

  if (obs::Session* s = telemetry_session(); s != nullptr) {
    s->ledger.meta = meta;
    if (!s->dump({}, detail::trace_path_slot(), detail::ledger_path_slot()))
      std::fprintf(stderr, "%s: failed to write telemetry artifacts\n", tool.c_str());
  }
  benchmark::Shutdown();
  return 0;
}

}  // namespace scflow::benchutil

#define SCFLOW_BENCHMARK_MAIN()                                              \
  int main(int argc, char** argv) {                                          \
    return scflow::benchutil::run_benchmark_main(argc, argv);                \
  }
