// Shared main() for the google-benchmark binaries: adds a `--json FILE`
// convenience flag (for scripted runs and the EXPERIMENTS.md tables) on
// top of the standard benchmark flags; it expands to
// --benchmark_out=FILE --benchmark_out_format=json.  The per-mechanism
// observability counters each bench attaches via state.counters land in
// that JSON next to the timing numbers.
//
// Also understands `--threads N` (or `--threads=N`): the worker-lane
// count the simulator benches pass to the parallel gate engine and the
// sharded batch runner (0 = one lane per hardware thread, default 1).
//
// `--backend NAME` selects the gate-simulation engine for benches that
// support both ("interpreted" = event-driven GateSim, "compiled" =
// bit-parallel CompiledSim bytecode); `--repeat N` expands to
// --benchmark_repetitions=N so scripted runs can take a min-of-N against
// scheduler noise (the trajectory script's extraction does exactly that).
#pragma once

#include <benchmark/benchmark.h>

#include <cstdlib>
#include <string>
#include <vector>

namespace scflow::benchutil {

namespace detail {
inline unsigned& threads_slot() {
  static unsigned t = 1;
  return t;
}
inline std::string& backend_slot() {
  static std::string b = "interpreted";
  return b;
}
}  // namespace detail

/// Lane count selected with --threads (1 when the flag is absent).
inline unsigned requested_threads() { return detail::threads_slot(); }

/// Engine name selected with --backend ("interpreted" when absent).
inline const std::string& requested_backend() { return detail::backend_slot(); }

inline int run_benchmark_main(int argc, char** argv) {
  std::vector<std::string> args(argv, argv + argc);
  std::vector<std::string> expanded;
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "--json" && i + 1 < args.size()) {
      expanded.push_back("--benchmark_out=" + args[++i]);
      expanded.push_back("--benchmark_out_format=json");
    } else if (args[i].rfind("--json=", 0) == 0) {
      expanded.push_back("--benchmark_out=" + args[i].substr(7));
      expanded.push_back("--benchmark_out_format=json");
    } else if (args[i] == "--threads" && i + 1 < args.size()) {
      detail::threads_slot() = static_cast<unsigned>(std::strtoul(args[++i].c_str(), nullptr, 10));
    } else if (args[i].rfind("--threads=", 0) == 0) {
      detail::threads_slot() =
          static_cast<unsigned>(std::strtoul(args[i].c_str() + 10, nullptr, 10));
    } else if (args[i] == "--backend" && i + 1 < args.size()) {
      detail::backend_slot() = args[++i];
    } else if (args[i].rfind("--backend=", 0) == 0) {
      detail::backend_slot() = args[i].substr(10);
    } else if (args[i] == "--repeat" && i + 1 < args.size()) {
      expanded.push_back("--benchmark_repetitions=" + args[++i]);
    } else if (args[i].rfind("--repeat=", 0) == 0) {
      expanded.push_back("--benchmark_repetitions=" + args[i].substr(9));
    } else {
      expanded.push_back(args[i]);
    }
  }
  std::vector<char*> cargs;
  cargs.reserve(expanded.size());
  for (auto& a : expanded) cargs.push_back(a.data());
  int cargc = static_cast<int>(cargs.size());
  benchmark::Initialize(&cargc, cargs.data());
  if (benchmark::ReportUnrecognizedArguments(cargc, cargs.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

}  // namespace scflow::benchutil

#define SCFLOW_BENCHMARK_MAIN()                                              \
  int main(int argc, char** argv) {                                          \
    return scflow::benchutil::run_benchmark_main(argc, argv);                \
  }
