// Shared main() for the google-benchmark binaries: adds a `--json FILE`
// convenience flag (for scripted runs and the EXPERIMENTS.md tables) on
// top of the standard benchmark flags; it expands to
// --benchmark_out=FILE --benchmark_out_format=json.  The per-mechanism
// observability counters each bench attaches via state.counters land in
// that JSON next to the timing numbers.
#pragma once

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

namespace scflow::benchutil {

inline int run_benchmark_main(int argc, char** argv) {
  std::vector<std::string> args(argv, argv + argc);
  std::vector<std::string> expanded;
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "--json" && i + 1 < args.size()) {
      expanded.push_back("--benchmark_out=" + args[++i]);
      expanded.push_back("--benchmark_out_format=json");
    } else if (args[i].rfind("--json=", 0) == 0) {
      expanded.push_back("--benchmark_out=" + args[i].substr(7));
      expanded.push_back("--benchmark_out_format=json");
    } else {
      expanded.push_back(args[i]);
    }
  }
  std::vector<char*> cargs;
  cargs.reserve(expanded.size());
  for (auto& a : expanded) cargs.push_back(a.data());
  int cargc = static_cast<int>(cargs.size());
  benchmark::Initialize(&cargc, cargs.data());
  if (benchmark::ReportUnrecognizedArguments(cargc, cargs.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

}  // namespace scflow::benchutil

#define SCFLOW_BENCHMARK_MAIN()                                              \
  int main(int argc, char** argv) {                                          \
    return scflow::benchutil::run_benchmark_main(argc, argv);                \
  }
