// Ablation: what the logic-optimisation passes buy.  Compares cell count
// and area of the synthesised SRC with and without word-level passes and
// gate-level optimisation — the "Design Compiler effort" dimension the
// paper's results implicitly depend on.
#include <benchmark/benchmark.h>

#include "bench_json_main.hpp"

#include "netlist/lower.hpp"
#include "netlist/opt.hpp"
#include "rtl/passes.hpp"
#include "rtl/src_design.hpp"

namespace {

using namespace scflow;

void synth_bench(benchmark::State& state, bool word_passes, bool gate_passes) {
  const rtl::Design design = rtl::build_src_design(rtl::rtl_opt_config());
  double area = 0.0;
  std::size_t cells = 0;
  for (auto _ : state) {
    rtl::Design d = word_passes ? rtl::run_passes(design, rtl::PassOptions{})
                                : rtl::Design(design);
    nl::Netlist gates = nl::lower_to_gates(d, {});
    if (gate_passes) gates = nl::optimize_gates(gates);
    nl::insert_scan_chain(gates);
    const auto rep = nl::report_area(gates);
    area = rep.total();
    cells = rep.cell_count;
    benchmark::DoNotOptimize(area);
  }
  state.counters["cells"] = static_cast<double>(cells);
  state.counters["area_um2"] = area;
}

void GateOpt_None(benchmark::State& s) { synth_bench(s, false, false); }
void GateOpt_WordOnly(benchmark::State& s) { synth_bench(s, true, false); }
void GateOpt_GateOnly(benchmark::State& s) { synth_bench(s, false, true); }
void GateOpt_Full(benchmark::State& s) { synth_bench(s, true, true); }

BENCHMARK(GateOpt_None)->Unit(benchmark::kMillisecond)->Iterations(3);
BENCHMARK(GateOpt_WordOnly)->Unit(benchmark::kMillisecond)->Iterations(3);
BENCHMARK(GateOpt_GateOnly)->Unit(benchmark::kMillisecond)->Iterations(3);
BENCHMARK(GateOpt_Full)->Unit(benchmark::kMillisecond)->Iterations(3);

}  // namespace

SCFLOW_BENCHMARK_MAIN()
