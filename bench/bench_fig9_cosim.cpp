// Figure 9: simulation performance of the HDL artefacts — the RTL design
// (interpreted), the gate netlist from the behavioural flow and the gate
// netlist from the RTL flow — each simulated (a) in the native interpreted
// "VHDL testbench" and (b) co-simulated with the compiled SystemC-style
// testbench.  The paper's finding: co-simulation is *slightly faster*,
// because the testbench runs compiled and the synchronisation overhead is
// smaller than the interpretation overhead it replaces.
#include <benchmark/benchmark.h>

#include "bench_json_main.hpp"
#include "cosim/bridge.hpp"
#include "dsp/stimulus.hpp"
#include "flow/synthesis_flow.hpp"
#include "hdlsim/dut.hpp"
#include "hdlsim/testbench_vm.hpp"
#include "hls/src_beh.hpp"
#include "rtl/src_design.hpp"

namespace {

using namespace scflow;
using P = dsp::SrcParams;

constexpr std::size_t kSamples = 60;

const std::vector<dsp::SrcEvent>& events() {
  static const auto ev = [] {
    const auto inputs = dsp::make_sine_stimulus(kSamples, 1000.0, 44100.0);
    return dsp::make_schedule(inputs, P::kPeriod44k1Ps, kSamples, P::kPeriod48kPs);
  }();
  return ev;
}

enum class DutKind { kRtl, kGateBeh, kGateRtl };

std::unique_ptr<hdlsim::Dut> make_dut(DutKind kind) {
  static const rtl::Design rtl_design = rtl::build_src_design(rtl::rtl_opt_config());
  static const nl::Netlist gates_beh =
      flow::synthesize_to_gates(hls::build_beh_src_design(hls::beh_opt_config()));
  static const nl::Netlist gates_rtl = flow::synthesize_to_gates(rtl_design);
  std::unique_ptr<hdlsim::Dut> dut;
  switch (kind) {
    case DutKind::kRtl: dut = std::make_unique<hdlsim::RtlDut>(rtl_design); break;
    case DutKind::kGateBeh: dut = std::make_unique<hdlsim::GateDut>(gates_beh); break;
    case DutKind::kGateRtl: dut = std::make_unique<hdlsim::GateDut>(gates_rtl); break;
  }
  if (kind != DutKind::kRtl) {
    dut->set_input("scan_in", 0);
    dut->set_input("scan_enable", 0);
  }
  return dut;
}

// Attach the simulator-internals counters (see hdlsim::SimCounters) next
// to the throughput numbers, so a run shows *why* the engines differ, not
// just how fast they go.
void report_counters(benchmark::State& state, const hdlsim::SimCounters& c) {
  state.counters["evals"] = static_cast<double>(c.evaluations);
  state.counters["dirty_pushes"] = static_cast<double>(c.dirty_pushes);
  state.counters["peak_q"] = static_cast<double>(c.peak_queue_depth);
  state.counters["ss_allocs"] = static_cast<double>(c.steady_state_allocs);
}

// DUT construction (netlist copy + simulator build) is setup, not
// simulation: keep it outside the timed region so cyc_per_s measures the
// engines, comparable across DUTs of very different construction cost.
void native_bench(benchmark::State& state, DutKind kind) {
  const auto prog = hdlsim::build_src_testbench(events(), dsp::SrcMode::k44_1To48);
  std::uint64_t cycles = 0, tb_instructions = 0;
  hdlsim::SimCounters last{};
  for (auto _ : state) {
    state.PauseTiming();
    auto dut = make_dut(kind);
    state.ResumeTiming();
    const auto r = hdlsim::run_testbench_vm(*dut, prog);
    benchmark::DoNotOptimize(r.outputs.data());
    cycles += r.cycles;
    tb_instructions += r.instructions_executed;
    last = r.dut_counters;
  }
  state.counters["cyc_per_s"] =
      benchmark::Counter(static_cast<double>(cycles), benchmark::Counter::kIsRate);
  state.counters["tb_instr"] = static_cast<double>(tb_instructions);
  report_counters(state, last);
}

void cosim_bench(benchmark::State& state, DutKind kind) {
  std::uint64_t cycles = 0, syncs = 0;
  hdlsim::SimCounters last{};
  for (auto _ : state) {
    state.PauseTiming();
    auto dut = make_dut(kind);
    // run_cosim builds the minisc testbench world before starting the
    // kernel; resume the clock only once it actually runs.
    const auto r = cosim::run_cosim(*dut, dsp::SrcMode::k44_1To48, events(),
                                    [&state] { state.ResumeTiming(); });
    benchmark::DoNotOptimize(r.outputs.data());
    cycles += r.cycles;
    syncs += r.syncs;
    last = r.dut_counters;
  }
  state.counters["cyc_per_s"] =
      benchmark::Counter(static_cast<double>(cycles), benchmark::Counter::kIsRate);
  state.counters["syncs"] = static_cast<double>(syncs);
  report_counters(state, last);
}

void Fig9_RTL_VhdlTestbench(benchmark::State& s) { native_bench(s, DutKind::kRtl); }
void Fig9_RTL_SystemCTestbench(benchmark::State& s) { cosim_bench(s, DutKind::kRtl); }
void Fig9_GateBEH_VhdlTestbench(benchmark::State& s) { native_bench(s, DutKind::kGateBeh); }
void Fig9_GateBEH_SystemCTestbench(benchmark::State& s) { cosim_bench(s, DutKind::kGateBeh); }
void Fig9_GateRTL_VhdlTestbench(benchmark::State& s) { native_bench(s, DutKind::kGateRtl); }
void Fig9_GateRTL_SystemCTestbench(benchmark::State& s) { cosim_bench(s, DutKind::kGateRtl); }

// CPU-time measurement: on a shared single-core host, wall-clock jitter
// (several percent) would swamp the small native-vs-cosim difference.
#define FIG9_BENCH(fn) \
  BENCHMARK(fn)->Unit(benchmark::kMillisecond)->MeasureProcessCPUTime()->MinTime(1.5)
FIG9_BENCH(Fig9_RTL_VhdlTestbench);
FIG9_BENCH(Fig9_RTL_SystemCTestbench);
FIG9_BENCH(Fig9_GateBEH_VhdlTestbench);
FIG9_BENCH(Fig9_GateBEH_SystemCTestbench);
FIG9_BENCH(Fig9_GateRTL_VhdlTestbench);
FIG9_BENCH(Fig9_GateRTL_SystemCTestbench);

}  // namespace

SCFLOW_BENCHMARK_MAIN()
