// Figure 9: simulation performance of the HDL artefacts — the RTL design
// (interpreted), the gate netlist from the behavioural flow and the gate
// netlist from the RTL flow — each simulated (a) in the native interpreted
// "VHDL testbench" and (b) co-simulated with the compiled SystemC-style
// testbench.  The paper's finding: co-simulation is *slightly faster*,
// because the testbench runs compiled and the synchronisation overhead is
// smaller than the interpretation overhead it replaces.
// `--backend compiled` swaps the gate DUTs onto the bit-parallel compiled
// bytecode engine (hdlsim::CompiledSim).  It broadcasts the testbench
// stimulus across 64 pattern lanes, so the comparable figure of merit is
// pattern-cycle throughput: patt_cyc_per_s = cycles x patterns per second
// (patterns = 64 compiled, 1 interpreted / RTL).
#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <string>

#include "bench_json_main.hpp"
#include "cosim/bridge.hpp"
#include "dsp/stimulus.hpp"
#include "flow/synthesis_flow.hpp"
#include "hdlsim/batch_runner.hpp"
#include "hdlsim/dut.hpp"
#include "hdlsim/testbench_vm.hpp"
#include "hls/src_beh.hpp"
#include "rtl/src_design.hpp"

namespace {

using namespace scflow;
using P = dsp::SrcParams;

constexpr std::size_t kSamples = 60;

const std::vector<dsp::SrcEvent>& events() {
  static const auto ev = [] {
    const auto inputs = dsp::make_sine_stimulus(kSamples, 1000.0, 44100.0);
    return dsp::make_schedule(inputs, P::kPeriod44k1Ps, kSamples, P::kPeriod48kPs);
  }();
  return ev;
}

enum class DutKind { kRtl, kGateBeh, kGateRtl };

const rtl::Design& rtl_design() {
  static const rtl::Design d = rtl::build_src_design(rtl::rtl_opt_config());
  return d;
}
// Synthesis happens once (static init) and records into the telemetry
// session when --ledger/--trace enabled it: one "synth" ledger entry per
// netlist, so a bench ledger names the exact DUTs the numbers ran on.
const nl::Netlist& gates_beh() {
  static const nl::Netlist n =
      flow::synthesize_to_gates(hls::build_beh_src_design(hls::beh_opt_config()),
                                nullptr, benchutil::telemetry_registry(),
                                "fig9.synth.beh_opt");
  return n;
}
const nl::Netlist& gates_rtl() {
  static const nl::Netlist n =
      flow::synthesize_to_gates(rtl_design(), nullptr,
                                benchutil::telemetry_registry(),
                                "fig9.synth.rtl_opt");
  return n;
}

hdlsim::Backend backend() {
  const std::string& b = benchutil::requested_backend();
  if (b == "compiled") return hdlsim::Backend::kCompiled;
  if (b != "interpreted") {
    std::fprintf(stderr, "error: unknown --backend '%s' (interpreted|compiled)\n", b.c_str());
    std::exit(2);
  }
  return hdlsim::Backend::kInterpreted;
}

// Stimulus lanes a gate DUT simulates per cycle: the compiled engine
// broadcasts over its 64 pattern lanes, the interpreter (and the RTL
// model) carries one.
double patterns_per_cycle(DutKind kind) {
  return kind != DutKind::kRtl && backend() == hdlsim::Backend::kCompiled
             ? static_cast<double>(hdlsim::CompiledSim::kLanes)
             : 1.0;
}

std::unique_ptr<hdlsim::Dut> make_dut(DutKind kind) {
  // Gate DUTs run on the lane count selected with --threads; the sweep is
  // deterministic, so the counters below are identical for every value.
  // --backend compiled selects the bytecode engine via the factory (the
  // RTL DUT has no gate engine and ignores the flag).
  hdlsim::GateSim::Options gate_opts;
  gate_opts.threads = benchutil::requested_threads();
  std::unique_ptr<hdlsim::Dut> dut;
  switch (kind) {
    case DutKind::kRtl: dut = std::make_unique<hdlsim::RtlDut>(rtl_design()); break;
    case DutKind::kGateBeh: dut = hdlsim::make_gate_dut(gates_beh(), gate_opts, backend()); break;
    case DutKind::kGateRtl: dut = hdlsim::make_gate_dut(gates_rtl(), gate_opts, backend()); break;
  }
  if (kind != DutKind::kRtl) {
    dut->set_input("scan_in", 0);
    dut->set_input("scan_enable", 0);
  }
  return dut;
}

// Attach the simulator-internals counters (see hdlsim::SimCounters) next
// to the throughput numbers, so a run shows *why* the engines differ, not
// just how fast they go.
void report_counters(benchmark::State& state, const hdlsim::SimCounters& c) {
  state.counters["evals"] = static_cast<double>(c.evaluations);
  state.counters["dirty_pushes"] = static_cast<double>(c.dirty_pushes);
  state.counters["peak_q"] = static_cast<double>(c.peak_queue_depth);
  state.counters["ss_allocs"] = static_cast<double>(c.steady_state_allocs);
}

// Lane count plus the per-worker sweep shards (multi-lane engines only) —
// the JSON then shows how the deterministic partition distributed the
// work, next to the totals it must sum back to.
void report_workers(benchmark::State& state, const std::vector<hdlsim::WorkerShardStats>& ws) {
  state.counters["threads"] = static_cast<double>(ws.empty() ? 1 : ws.size());
  if (ws.size() <= 1) return;
  for (std::size_t w = 0; w < ws.size(); ++w) {
    const std::string p = "w" + std::to_string(w);
    state.counters[p + "_evals"] = static_cast<double>(ws[w].evaluations);
    state.counters[p + "_pushes"] = static_cast<double>(ws[w].dirty_pushes);
  }
}

// DUT construction (netlist copy + simulator build) is setup, not
// simulation: keep it outside the timed region so cyc_per_s measures the
// engines, comparable across DUTs of very different construction cost.
void native_bench(benchmark::State& state, DutKind kind) {
  const auto prog = hdlsim::build_src_testbench(events(), dsp::SrcMode::k44_1To48);
  std::uint64_t cycles = 0, tb_instructions = 0;
  hdlsim::SimCounters last{};
  std::vector<hdlsim::WorkerShardStats> workers;
  for (auto _ : state) {
    state.PauseTiming();
    auto dut = make_dut(kind);
    state.ResumeTiming();
    const auto r = hdlsim::run_testbench_vm(*dut, prog);
    benchmark::DoNotOptimize(r.outputs.data());
    cycles += r.cycles;
    tb_instructions += r.instructions_executed;
    last = r.dut_counters;
    workers = dut->worker_stats();
  }
  state.counters["cyc_per_s"] =
      benchmark::Counter(static_cast<double>(cycles), benchmark::Counter::kIsRate);
  state.counters["patterns"] = patterns_per_cycle(kind);
  state.counters["patt_cyc_per_s"] = benchmark::Counter(
      static_cast<double>(cycles) * patterns_per_cycle(kind), benchmark::Counter::kIsRate);
  state.counters["tb_instr"] = static_cast<double>(tb_instructions);
  report_counters(state, last);
  report_workers(state, workers);
}

void cosim_bench(benchmark::State& state, DutKind kind) {
  std::uint64_t cycles = 0, syncs = 0;
  hdlsim::SimCounters last{};
  std::vector<hdlsim::WorkerShardStats> workers;
  for (auto _ : state) {
    state.PauseTiming();
    auto dut = make_dut(kind);
    // run_cosim builds the minisc testbench world before starting the
    // kernel; resume the clock only once it actually runs.
    const auto r = cosim::run_cosim(*dut, dsp::SrcMode::k44_1To48, events(),
                                    [&state] { state.ResumeTiming(); });
    benchmark::DoNotOptimize(r.outputs.data());
    cycles += r.cycles;
    syncs += r.syncs;
    last = r.dut_counters;
    workers = r.dut_workers;
  }
  state.counters["cyc_per_s"] =
      benchmark::Counter(static_cast<double>(cycles), benchmark::Counter::kIsRate);
  state.counters["patterns"] = patterns_per_cycle(kind);
  state.counters["patt_cyc_per_s"] = benchmark::Counter(
      static_cast<double>(cycles) * patterns_per_cycle(kind), benchmark::Counter::kIsRate);
  state.counters["syncs"] = static_cast<double>(syncs);
  report_counters(state, last);
  report_workers(state, workers);
}

void Fig9_RTL_VhdlTestbench(benchmark::State& s) { native_bench(s, DutKind::kRtl); }
void Fig9_RTL_SystemCTestbench(benchmark::State& s) { cosim_bench(s, DutKind::kRtl); }
void Fig9_GateBEH_VhdlTestbench(benchmark::State& s) { native_bench(s, DutKind::kGateBeh); }
void Fig9_GateBEH_SystemCTestbench(benchmark::State& s) { cosim_bench(s, DutKind::kGateBeh); }
void Fig9_GateRTL_VhdlTestbench(benchmark::State& s) { native_bench(s, DutKind::kGateRtl); }
void Fig9_GateRTL_SystemCTestbench(benchmark::State& s) { cosim_bench(s, DutKind::kGateRtl); }

// CPU-time measurement: on a shared single-core host, wall-clock jitter
// (several percent) would swamp the small native-vs-cosim difference.
#define FIG9_BENCH(fn) \
  BENCHMARK(fn)->Unit(benchmark::kMillisecond)->MeasureProcessCPUTime()->MinTime(1.5)
FIG9_BENCH(Fig9_RTL_VhdlTestbench);
FIG9_BENCH(Fig9_RTL_SystemCTestbench);
FIG9_BENCH(Fig9_GateBEH_VhdlTestbench);
FIG9_BENCH(Fig9_GateBEH_SystemCTestbench);
FIG9_BENCH(Fig9_GateRTL_VhdlTestbench);
FIG9_BENCH(Fig9_GateRTL_SystemCTestbench);

// ---------------------------------------------------------------------------
// Sharded batch throughput: N independent schedule simulations fanned over
// the batch runner's worker pool.  This is the profitable parallel axis
// for sweep-style workloads (each DUT cycle is ~µs-scale, far below any
// dispatch granularity, but whole simulations shard perfectly), so the
// scaling claim is measured here.  Wall-clock (UseRealTime), not CPU time:
// aggregate cycles per second across all lanes is the figure of merit, and
// it only improves with --threads on a multi-core host.
// ---------------------------------------------------------------------------

const std::vector<std::vector<dsp::SrcEvent>>& batch_schedules() {
  static const auto schedules = [] {
    std::vector<std::vector<dsp::SrcEvent>> s;
    for (std::uint64_t j = 0; j < 8; ++j) {
      const auto inputs = dsp::make_noise_stimulus(kSamples, 7 + j);
      s.push_back(dsp::make_schedule(inputs, P::kPeriod44k1Ps, kSamples, P::kPeriod48kPs));
    }
    return s;
  }();
  return schedules;
}

void batch_bench(benchmark::State& state, const nl::Netlist& gates) {
  const unsigned threads = benchutil::requested_threads();
  const double patterns = patterns_per_cycle(DutKind::kGateRtl);
  std::uint64_t cycles = 0, evals = 0;
  for (auto _ : state) {
    // Session non-null only under --ledger/--trace: batch job spans +
    // "gate_batch.job_ns" histograms accrue there, the timed loop stays
    // uninstrumented otherwise.
    const auto results =
        hdlsim::run_src_netlist_batch(gates, dsp::SrcMode::k44_1To48, batch_schedules(), {},
                                      threads, benchutil::telemetry_session(), 0, backend());
    for (const auto& r : results) {
      benchmark::DoNotOptimize(r.outputs.data());
      cycles += r.cycles;
      evals += r.counters.evaluations;
    }
  }
  state.counters["cyc_per_s"] =
      benchmark::Counter(static_cast<double>(cycles), benchmark::Counter::kIsRate);
  state.counters["patterns"] = patterns;
  state.counters["patt_cyc_per_s"] =
      benchmark::Counter(static_cast<double>(cycles) * patterns, benchmark::Counter::kIsRate);
  state.counters["evals_per_s"] =
      benchmark::Counter(static_cast<double>(evals), benchmark::Counter::kIsRate);
  state.counters["threads"] = static_cast<double>(threads == 0 ? 0 : threads);
  state.counters["jobs"] = static_cast<double>(batch_schedules().size());
}

void Fig9_GateBEH_BatchSweep(benchmark::State& s) { batch_bench(s, gates_beh()); }
void Fig9_GateRTL_BatchSweep(benchmark::State& s) { batch_bench(s, gates_rtl()); }
#define FIG9_BATCH_BENCH(fn) \
  BENCHMARK(fn)->Unit(benchmark::kMillisecond)->UseRealTime()->MinTime(1.5)
FIG9_BATCH_BENCH(Fig9_GateBEH_BatchSweep);
FIG9_BATCH_BENCH(Fig9_GateRTL_BatchSweep);

}  // namespace

SCFLOW_BENCHMARK_MAIN()
