// Stuck-at fault campaigns over the five Fig. 10 gate-level designs:
// each design's collapsed fault list is simulated twice — once against the
// scan-inserted synthesis endpoint (scan patterns driven through the
// chain) and once against the pre-scan twin — and the coverage delta is
// reported as the testability value of scan insertion.
//
// `--json FILE` writes the unified scflow-obs-2 report: per-design
// "fault.<design>.scan.*" / ".noscan.*" counters (population, detected,
// budget-degraded, oscillating, faulty cycles) plus the batch-runner lane
// timelines.  `--threads N` sets the campaign lane count (coverage numbers
// are bit-identical for any N — that determinism is itself under test in
// the tier-1 suite).  `--faults N` bounds the sampled faults per design.
// `--backend compiled` runs each good-machine reference on the
// bit-parallel CompiledSim (faulty machines always interpret); the
// classifications are bit-identical either way.
//
// `--trace FILE` / `--ledger FILE` turn on run telemetry: campaign root
// spans with per-fault batch jobs hanging off them land in a Perfetto
// trace (chrome://tracing / ui.perfetto.dev), and each campaign appends
// one run-ledger entry (counters, coverage, per-fault cycle histogram).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "flow/synthesis_flow.hpp"
#include "hdlsim/compile.hpp"
#include "obs/session.hpp"

int main(int argc, char** argv) {
  std::string json_path, trace_path, ledger_path;
  std::string backend = "interpreted";
  unsigned threads = 1;
  std::size_t max_faults = 120;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_path = argv[i] + 7;
    } else if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < argc) {
      trace_path = argv[++i];
    } else if (std::strncmp(argv[i], "--trace=", 8) == 0) {
      trace_path = argv[i] + 8;
    } else if (std::strcmp(argv[i], "--ledger") == 0 && i + 1 < argc) {
      ledger_path = argv[++i];
    } else if (std::strncmp(argv[i], "--ledger=", 9) == 0) {
      ledger_path = argv[i] + 9;
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      threads = static_cast<unsigned>(std::strtoul(argv[++i], nullptr, 10));
    } else if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      threads = static_cast<unsigned>(std::strtoul(argv[i] + 10, nullptr, 10));
    } else if (std::strcmp(argv[i], "--faults") == 0 && i + 1 < argc) {
      max_faults = std::strtoul(argv[++i], nullptr, 10);
    } else if (std::strncmp(argv[i], "--faults=", 9) == 0) {
      max_faults = std::strtoul(argv[i] + 9, nullptr, 10);
    } else if (std::strcmp(argv[i], "--backend") == 0 && i + 1 < argc) {
      backend = argv[++i];
    } else if (std::strncmp(argv[i], "--backend=", 10) == 0) {
      backend = argv[i] + 10;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--json FILE] [--trace FILE] [--ledger FILE] "
                   "[--threads N] [--faults N] "
                   "[--backend interpreted|compiled]\n",
                   argv[0]);
      return 2;
    }
  }
  if (backend != "interpreted" && backend != "compiled") {
    std::fprintf(stderr, "error: unknown --backend '%s' (interpreted|compiled)\n",
                 backend.c_str());
    return 2;
  }

  scflow::obs::Session session;
  // Spans, histograms and ledger entries only when asked for: the default
  // run keeps the campaign loop uninstrumented (counters still accrue in
  // the registry — they always did).
  const bool telemetry = !trace_path.empty() || !ledger_path.empty();
  scflow::flow::FaultOptions fopt;
  fopt.run = true;
  fopt.campaign.max_faults = max_faults;
  fopt.campaign.threads = threads;
  fopt.campaign.reference_backend = backend == "compiled"
                                        ? scflow::hdlsim::Backend::kCompiled
                                        : scflow::hdlsim::Backend::kInterpreted;
  fopt.session = telemetry ? &session : nullptr;
  const auto rows = scflow::flow::figure10_area_rows(&session.registry, {}, fopt);
  std::printf("%s", scflow::flow::format_fault_table(rows).c_str());

  bool scan_helps_everywhere = true;
  for (const auto& r : rows)
    if (r.scan_coverage_pct < r.noscan_coverage_pct) scan_helps_everywhere = false;
  std::printf("\nscan coverage >= no-scan on every design: %s\n",
              scan_helps_everywhere ? "yes" : "NO");

  if (!json_path.empty() || telemetry) {
    session.ledger.meta = scflow::obs::collect_run_metadata(argv[0]);
    if (!session.dump(json_path, trace_path, ledger_path)) {
      std::fprintf(stderr, "error: cannot write telemetry artifacts\n");
      return 1;
    }
    if (!json_path.empty()) std::printf("metrics report: %s\n", json_path.c_str());
    if (!trace_path.empty()) std::printf("perfetto trace: %s\n", trace_path.c_str());
    if (!ledger_path.empty()) std::printf("run ledger: %s\n", ledger_path.c_str());
  }
  return scan_helps_everywhere ? 0 : 1;
}
