// Stuck-at fault campaigns over the five Fig. 10 gate-level designs:
// each design's collapsed fault list is simulated twice — once against the
// scan-inserted synthesis endpoint (scan patterns driven through the
// chain) and once against the pre-scan twin — and the coverage delta is
// reported as the testability value of scan insertion.
//
// `--json FILE` writes the unified scflow-obs-2 report: per-design
// "fault.<design>.scan.*" / ".noscan.*" counters (population, detected,
// budget-degraded, oscillating, faulty cycles) plus the batch-runner lane
// timelines.  `--threads N` sets the campaign lane count (coverage numbers
// are bit-identical for any N — that determinism is itself under test in
// the tier-1 suite).  `--faults N` bounds the sampled faults per design.
// `--backend compiled` runs each good-machine reference on the
// bit-parallel CompiledSim (faulty machines always interpret); the
// classifications are bit-identical either way.
//
// `--trace FILE` / `--ledger FILE` turn on run telemetry: campaign root
// spans with per-fault batch jobs hanging off them land in a Perfetto
// trace (chrome://tracing / ui.perfetto.dev), and each campaign appends
// one run-ledger entry (counters, coverage, per-fault cycle histogram).
//
// `--engine event-driven|ppsfp` selects the campaign engine (PPSFP packs
// 64 faults per compiled run and drops each at its first detection).
// `--gbench-json FILE` emits a Google-Benchmark-shaped JSON with one
// "fault_<design>" entry per design carrying `faults_per_s` — the
// trajectory metric scripts/bench_compare.py ratchets; `--repeat N` reruns
// the whole five-design sweep N times so the ratchet can take the max.
#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "flow/synthesis_flow.hpp"
#include "hdlsim/compile.hpp"
#include "obs/session.hpp"

namespace {

// Registry-friendly slug of an AreaRow label ("RTL opt." -> "rtl_opt"),
// matching the fig10.<slug> metric names.
std::string row_slug(const std::string& label) {
  std::string s;
  for (char c : label) {
    if (c == '.') continue;
    if (c == ' ' || c == '-') {
      if (!s.empty() && s.back() != '_') s.push_back('_');
      continue;
    }
    s.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  }
  return s;
}

// One gbench "iteration" entry per (design, repeat): name "fault_<slug>",
// counter faults_per_s = faults simulated across the scan+noscan pair per
// wall second.  The shape matches what scripts/bench_compare.py folds
// (best-of-repeats per name, then pin comparison).
bool write_gbench_json(const std::string& path,
                       const std::vector<std::vector<scflow::flow::AreaRow>>& sweeps,
                       const std::string& engine, unsigned threads) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  std::fprintf(f, "{\n  \"context\": {\"engine\": \"%s\", \"threads\": %u},\n",
               engine.c_str(), threads);
  std::fprintf(f, "  \"benchmarks\": [\n");
  bool first = true;
  for (const auto& rows : sweeps) {
    for (const auto& r : rows) {
      const double wall_ns = static_cast<double>(r.fault_wall_ns);
      if (wall_ns <= 0.0) continue;
      // scan + noscan each simulate the list once -> 2x faults per pair.
      const double fps = 2.0 * static_cast<double>(r.faults_simulated) /
                         (wall_ns / 1e9);
      if (!first) std::fprintf(f, ",\n");
      first = false;
      std::fprintf(f,
                   "    {\"name\": \"fault_%s\", \"run_type\": \"iteration\", "
                   "\"iterations\": 1, \"real_time\": %.1f, \"cpu_time\": %.1f, "
                   "\"time_unit\": \"ns\", \"faults_per_s\": %.3f}",
                   row_slug(r.name).c_str(), wall_ns, wall_ns, fps);
    }
  }
  std::fprintf(f, "\n  ]\n}\n");
  std::fclose(f);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path, trace_path, ledger_path, gbench_path;
  std::string backend = "interpreted";
  std::string engine = "event-driven";
  unsigned threads = 1;
  std::size_t max_faults = 120;
  int repeat = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_path = argv[i] + 7;
    } else if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < argc) {
      trace_path = argv[++i];
    } else if (std::strncmp(argv[i], "--trace=", 8) == 0) {
      trace_path = argv[i] + 8;
    } else if (std::strcmp(argv[i], "--ledger") == 0 && i + 1 < argc) {
      ledger_path = argv[++i];
    } else if (std::strncmp(argv[i], "--ledger=", 9) == 0) {
      ledger_path = argv[i] + 9;
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      threads = static_cast<unsigned>(std::strtoul(argv[++i], nullptr, 10));
    } else if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      threads = static_cast<unsigned>(std::strtoul(argv[i] + 10, nullptr, 10));
    } else if (std::strcmp(argv[i], "--faults") == 0 && i + 1 < argc) {
      max_faults = std::strtoul(argv[++i], nullptr, 10);
    } else if (std::strncmp(argv[i], "--faults=", 9) == 0) {
      max_faults = std::strtoul(argv[i] + 9, nullptr, 10);
    } else if (std::strcmp(argv[i], "--backend") == 0 && i + 1 < argc) {
      backend = argv[++i];
    } else if (std::strncmp(argv[i], "--backend=", 10) == 0) {
      backend = argv[i] + 10;
    } else if (std::strcmp(argv[i], "--engine") == 0 && i + 1 < argc) {
      engine = argv[++i];
    } else if (std::strncmp(argv[i], "--engine=", 9) == 0) {
      engine = argv[i] + 9;
    } else if (std::strcmp(argv[i], "--gbench-json") == 0 && i + 1 < argc) {
      gbench_path = argv[++i];
    } else if (std::strncmp(argv[i], "--gbench-json=", 14) == 0) {
      gbench_path = argv[i] + 14;
    } else if (std::strcmp(argv[i], "--repeat") == 0 && i + 1 < argc) {
      repeat = std::max(1, static_cast<int>(std::strtol(argv[++i], nullptr, 10)));
    } else if (std::strncmp(argv[i], "--repeat=", 9) == 0) {
      repeat = std::max(1, static_cast<int>(std::strtol(argv[i] + 9, nullptr, 10)));
    } else {
      std::fprintf(stderr,
                   "usage: %s [--json FILE] [--trace FILE] [--ledger FILE] "
                   "[--threads N] [--faults N] "
                   "[--backend interpreted|compiled] "
                   "[--engine event-driven|ppsfp] "
                   "[--gbench-json FILE] [--repeat N]\n",
                   argv[0]);
      return 2;
    }
  }
  if (backend != "interpreted" && backend != "compiled") {
    std::fprintf(stderr, "error: unknown --backend '%s' (interpreted|compiled)\n",
                 backend.c_str());
    return 2;
  }
  if (engine != "event-driven" && engine != "ppsfp") {
    std::fprintf(stderr, "error: unknown --engine '%s' (event-driven|ppsfp)\n",
                 engine.c_str());
    return 2;
  }

  scflow::obs::Session session;
  // Spans, histograms and ledger entries only when asked for: the default
  // run keeps the campaign loop uninstrumented (counters still accrue in
  // the registry — they always did).
  const bool telemetry = !trace_path.empty() || !ledger_path.empty();
  scflow::flow::FaultOptions fopt;
  fopt.run = true;
  fopt.campaign.max_faults = max_faults;
  fopt.campaign.threads = threads;
  fopt.campaign.reference_backend = backend == "compiled"
                                        ? scflow::hdlsim::Backend::kCompiled
                                        : scflow::hdlsim::Backend::kInterpreted;
  fopt.campaign.engine = engine == "ppsfp"
                             ? scflow::fault::CampaignOptions::Engine::kPpsfp
                             : scflow::fault::CampaignOptions::Engine::kEventDriven;
  fopt.session = telemetry ? &session : nullptr;
  std::vector<std::vector<scflow::flow::AreaRow>> sweeps;
  for (int rep = 0; rep < repeat; ++rep)
    sweeps.push_back(scflow::flow::figure10_area_rows(&session.registry, {}, fopt));
  const auto& rows = sweeps.front();
  std::printf("%s", scflow::flow::format_fault_table(rows).c_str());

  bool scan_helps_everywhere = true;
  for (const auto& r : rows)
    if (r.scan_coverage_pct < r.noscan_coverage_pct) scan_helps_everywhere = false;
  std::printf("\nscan coverage >= no-scan on every design: %s\n",
              scan_helps_everywhere ? "yes" : "NO");

  if (!gbench_path.empty()) {
    if (!write_gbench_json(gbench_path, sweeps, engine, threads)) {
      std::fprintf(stderr, "error: cannot write %s\n", gbench_path.c_str());
      return 1;
    }
    std::printf("gbench json: %s\n", gbench_path.c_str());
  }

  if (!json_path.empty() || telemetry) {
    session.ledger.meta = scflow::obs::collect_run_metadata(argv[0]);
    if (!session.dump(json_path, trace_path, ledger_path)) {
      std::fprintf(stderr, "error: cannot write telemetry artifacts\n");
      return 1;
    }
    if (!json_path.empty()) std::printf("metrics report: %s\n", json_path.c_str());
    if (!trace_path.empty()) std::printf("perfetto trace: %s\n", trace_path.c_str());
    if (!ledger_path.empty()) std::printf("run ledger: %s\n", ledger_path.c_str());
  }
  return scan_helps_everywhere ? 0 : 1;
}
