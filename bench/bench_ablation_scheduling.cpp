// Ablation (paper §4.4): behavioural scheduling modes.  The unoptimised
// behavioural model keeps "handshaking in loops" (the free-floating I/O
// scheduling mode); the optimisation replaces it with a fixed cycle
// scheme.  This bench quantifies the schedule-length and area cost of the
// handshake states and of the pessimistic bit-widths, separately.
#include <benchmark/benchmark.h>

#include "bench_json_main.hpp"

#include "flow/synthesis_flow.hpp"
#include "hls/src_beh.hpp"

namespace {

using namespace scflow;

void build_config(benchmark::State& state, const hls::BehConfig& cfg) {
  hls::Schedule sched;
  double area_total = 0.0, comb = 0.0;
  std::size_t flops = 0;
  for (auto _ : state) {
    const rtl::Design d = hls::build_beh_src_design(cfg, &sched);
    const nl::Netlist gates = flow::synthesize_to_gates(d);
    const auto rep = nl::report_area(gates);
    area_total = rep.total();
    comb = rep.combinational;
    flops = rep.flop_count;
    benchmark::DoNotOptimize(area_total);
  }
  state.counters["slots_per_iter"] = static_cast<double>(sched.num_slots);
  state.counters["steps_per_iter"] = static_cast<double>(sched.num_steps);
  state.counters["area_um2"] = area_total;
  state.counters["comb_um2"] = comb;
  state.counters["flops"] = static_cast<double>(flops);
}

void Ablation_Beh_Unopt(benchmark::State& s) { build_config(s, hls::beh_unopt_config()); }
void Ablation_Beh_Opt(benchmark::State& s) { build_config(s, hls::beh_opt_config()); }
void Ablation_Beh_HandshakeOnly(benchmark::State& s) {
  // Pessimistic widths fixed (opt values), handshake kept: isolates the
  // schedule effect.
  hls::BehConfig cfg = hls::beh_opt_config();
  cfg.name = "src_beh_handshake_only";
  cfg.ram_handshake_states = 1;
  build_config(s, cfg);
}
void Ablation_Beh_WideWidthsOnly(benchmark::State& s) {
  // Fixed cycle scheme, pessimistic widths: isolates the width effect.
  hls::BehConfig cfg = hls::beh_unopt_config();
  cfg.name = "src_beh_wide_only";
  cfg.ram_handshake_states = 0;
  build_config(s, cfg);
}

BENCHMARK(Ablation_Beh_Unopt)->Unit(benchmark::kMillisecond)->Iterations(3);
BENCHMARK(Ablation_Beh_Opt)->Unit(benchmark::kMillisecond)->Iterations(3);
BENCHMARK(Ablation_Beh_HandshakeOnly)->Unit(benchmark::kMillisecond)->Iterations(3);
BENCHMARK(Ablation_Beh_WideWidthsOnly)->Unit(benchmark::kMillisecond)->Iterations(3);

}  // namespace

SCFLOW_BENCHMARK_MAIN()
