// Figure 10: gate-level area of the SRC designs relative to the VHDL
// reference implementation (= 100 %), split into combinational and
// sequential cells.  Memories are excluded (identical macros in every
// implementation); the scan chain is included.  This regenerates the
// paper's bar chart as a table.
//
// Paper values: BEH unopt 127.5 %, the optimised SystemC implementations
// *below* 100 %, even RTL-unopt below the reference, comb(BEH opt) ~
// comb(RTL opt), RTL savings from registers.
// `--json FILE` writes the unified scflow-obs-2 report: per-design synthesis
// pass timings, pass-by-pass cell deltas, scan flops, HLS scheduling stats
// and the area gauges that build the table below.  `--ledger FILE` appends
// one run-ledger entry per design synthesis (input/output netlist hashes,
// cell deltas) for scflow_report to render and diff.
#include <cstdio>
#include <cstring>
#include <string>

#include "flow/synthesis_flow.hpp"
#include "obs/session.hpp"

int main(int argc, char** argv) {
  std::string json_path, ledger_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_path = argv[i] + 7;
    } else if (std::strcmp(argv[i], "--ledger") == 0 && i + 1 < argc) {
      ledger_path = argv[++i];
    } else if (std::strncmp(argv[i], "--ledger=", 9) == 0) {
      ledger_path = argv[i] + 9;
    } else {
      std::fprintf(stderr, "usage: %s [--json FILE] [--ledger FILE]\n", argv[0]);
      return 2;
    }
  }

  scflow::obs::Session session;
  scflow::obs::Registry& registry = session.registry;
  const auto rows = scflow::flow::figure10_area_rows(&registry);
  std::printf("%s", scflow::flow::format_area_table(rows).c_str());

  std::printf("\npaper (DATE 2004, 0.25u, Synopsys):   measured (this substrate):\n");
  std::printf("  VHDL-Ref    100.0 %%                    %6.1f %%\n", rows[0].total_pct);
  std::printf("  BEH unopt.  127.5 %%                    %6.1f %%\n", rows[1].total_pct);
  std::printf("  BEH opt.     < 100 %%                   %6.1f %%\n", rows[2].total_pct);
  std::printf("  RTL unopt.   < 100 %%                   %6.1f %%\n", rows[3].total_pct);
  std::printf("  RTL opt.    smallest                   %6.1f %%\n", rows[4].total_pct);

  const bool shape_holds =
      rows[1].total_pct > 100.0 && rows[2].total_pct < 100.0 &&
      rows[3].total_pct < 100.0 && rows[4].total_pct < rows[3].total_pct &&
      rows[2].sequential_pct > rows[4].sequential_pct;
  std::printf("\nFig. 10 shape holds: %s\n", shape_holds ? "yes" : "NO");

  if (!json_path.empty() || !ledger_path.empty()) {
    session.ledger.meta = scflow::obs::collect_run_metadata(argv[0]);
    if (!session.dump(json_path, {}, ledger_path)) {
      std::fprintf(stderr, "error: cannot write telemetry artifacts\n");
      return 1;
    }
    if (!json_path.empty()) std::printf("metrics report: %s\n", json_path.c_str());
    if (!ledger_path.empty()) std::printf("run ledger: %s\n", ledger_path.c_str());
  }
  return shape_holds ? 0 : 1;
}
