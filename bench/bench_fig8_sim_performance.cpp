// Figure 8: simulation performance (simulated clock cycles per second of
// wall time) across the abstraction levels of the refinement flow.
// As in the paper, the unclocked levels (C++ and channel-SystemC) are
// scaled assuming the 25 MHz system clock.
//
// Paper values (Sun Blade 100, 500 MHz, gcc 2.95 era): a monotone ladder
// with C++ fastest, then SystemC-with-channels, then the clocked levels.
// Absolute numbers differ by decades of hardware; the *ordering* and the
// rough magnitude of the gaps are the reproduction target.
#include <benchmark/benchmark.h>

#include "bench_json_main.hpp"
#include "core/run.hpp"
#include "dsp/stimulus.hpp"

namespace {

using namespace scflow;
using model::RefinementLevel;
using P = dsp::SrcParams;

const std::vector<dsp::SrcEvent>& schedule_for(std::size_t samples) {
  static std::map<std::size_t, std::vector<dsp::SrcEvent>> cache;
  auto& ev = cache[samples];
  if (ev.empty()) {
    const auto inputs = dsp::make_sine_stimulus(samples, 1000.0, 44100.0);
    ev = dsp::make_schedule(inputs, P::kPeriod44k1Ps, samples, P::kPeriod48kPs);
  }
  return ev;
}

void run_level_bench(benchmark::State& state, RefinementLevel level, std::size_t samples) {
  const auto& events = schedule_for(samples);
  std::uint64_t total_cycles = 0;
  std::size_t outputs = 0;
  minisc::SimulationStats last{};
  for (auto _ : state) {
    const auto r = model::run_level(level, dsp::SrcMode::k44_1To48, events);
    benchmark::DoNotOptimize(r.outputs.data());
    total_cycles += r.simulated_cycles;
    outputs = r.outputs.size();
    last = r.stats;
  }
  // The paper's y-axis: simulated clock cycles per wall-clock second.
  state.counters["cyc_per_s"] =
      benchmark::Counter(static_cast<double>(total_cycles), benchmark::Counter::kIsRate);
  state.counters["outputs"] = static_cast<double>(outputs);
  // The paper's *explanation* for the ladder: per-mechanism kernel counts
  // for one run of the level (zero at the C++ level, which has no kernel).
  state.counters["activations"] = static_cast<double>(last.process_activations);
  state.counters["context_switches"] = static_cast<double>(last.context_switches);
  state.counters["delta_cycles"] = static_cast<double>(last.delta_cycles);
  state.counters["method_invocations"] = static_cast<double>(last.method_invocations);
  state.counters["signal_updates"] = static_cast<double>(last.signal_updates);
}

void Fig8_Cpp_Algorithmic(benchmark::State& s) {
  run_level_bench(s, RefinementLevel::kAlgorithmicCpp, 2000);
}
void Fig8_SystemC_Channels(benchmark::State& s) {
  run_level_bench(s, RefinementLevel::kChannelSystemC, 2000);
}
void Fig8_Behavioural(benchmark::State& s) {
  run_level_bench(s, RefinementLevel::kBehOpt, 120);
}
void Fig8_RTL(benchmark::State& s) {
  run_level_bench(s, RefinementLevel::kRtlOpt, 120);
}

BENCHMARK(Fig8_Cpp_Algorithmic)->Unit(benchmark::kMillisecond);
BENCHMARK(Fig8_SystemC_Channels)->Unit(benchmark::kMillisecond);
BENCHMARK(Fig8_Behavioural)->Unit(benchmark::kMillisecond);
BENCHMARK(Fig8_RTL)->Unit(benchmark::kMillisecond);

}  // namespace

SCFLOW_BENCHMARK_MAIN()
