# Empty dependencies file for test_gate_alloc.
# This may be replaced when dependencies are built.
