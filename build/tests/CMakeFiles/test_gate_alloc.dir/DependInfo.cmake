
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_gate_alloc.cpp" "tests/CMakeFiles/test_gate_alloc.dir/test_gate_alloc.cpp.o" "gcc" "tests/CMakeFiles/test_gate_alloc.dir/test_gate_alloc.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/hdlsim/CMakeFiles/scflow_hdlsim.dir/DependInfo.cmake"
  "/root/repo/build/src/rtl/CMakeFiles/scflow_rtl.dir/DependInfo.cmake"
  "/root/repo/build/src/netlist/CMakeFiles/scflow_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/dsp/CMakeFiles/scflow_dsp.dir/DependInfo.cmake"
  "/root/repo/build/src/dtypes/CMakeFiles/scflow_dtypes.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
