file(REMOVE_RECURSE
  "CMakeFiles/test_gate_alloc.dir/test_gate_alloc.cpp.o"
  "CMakeFiles/test_gate_alloc.dir/test_gate_alloc.cpp.o.d"
  "test_gate_alloc"
  "test_gate_alloc.pdb"
  "test_gate_alloc[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gate_alloc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
