file(REMOVE_RECURSE
  "CMakeFiles/test_src_design.dir/test_src_design.cpp.o"
  "CMakeFiles/test_src_design.dir/test_src_design.cpp.o.d"
  "test_src_design"
  "test_src_design.pdb"
  "test_src_design[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_src_design.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
