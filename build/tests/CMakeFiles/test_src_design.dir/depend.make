# Empty dependencies file for test_src_design.
# This may be replaced when dependencies are built.
