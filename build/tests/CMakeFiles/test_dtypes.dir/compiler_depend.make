# Empty compiler generated dependencies file for test_dtypes.
# This may be replaced when dependencies are built.
