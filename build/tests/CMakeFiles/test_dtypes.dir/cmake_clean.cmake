file(REMOVE_RECURSE
  "CMakeFiles/test_dtypes.dir/test_dtypes.cpp.o"
  "CMakeFiles/test_dtypes.dir/test_dtypes.cpp.o.d"
  "test_dtypes"
  "test_dtypes.pdb"
  "test_dtypes[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dtypes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
