file(REMOVE_RECURSE
  "CMakeFiles/test_gate_level.dir/test_gate_level.cpp.o"
  "CMakeFiles/test_gate_level.dir/test_gate_level.cpp.o.d"
  "test_gate_level"
  "test_gate_level.pdb"
  "test_gate_level[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gate_level.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
