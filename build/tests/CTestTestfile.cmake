# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_dtypes[1]_include.cmake")
include("/root/repo/build/tests/test_kernel[1]_include.cmake")
include("/root/repo/build/tests/test_dsp[1]_include.cmake")
include("/root/repo/build/tests/test_core_models[1]_include.cmake")
include("/root/repo/build/tests/test_rtl[1]_include.cmake")
include("/root/repo/build/tests/test_src_design[1]_include.cmake")
include("/root/repo/build/tests/test_hls[1]_include.cmake")
include("/root/repo/build/tests/test_netlist[1]_include.cmake")
include("/root/repo/build/tests/test_gate_level[1]_include.cmake")
include("/root/repo/build/tests/test_gate_alloc[1]_include.cmake")
include("/root/repo/build/tests/test_verilog[1]_include.cmake")
include("/root/repo/build/tests/test_cosim[1]_include.cmake")
include("/root/repo/build/tests/test_flow[1]_include.cmake")
include("/root/repo/build/tests/test_vcd[1]_include.cmake")
include("/root/repo/build/tests/test_fuzz_equivalence[1]_include.cmake")
