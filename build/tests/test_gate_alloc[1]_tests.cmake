add_test([=[GateSimAllocation.SteadyStateHotPathIsAllocationFree]=]  /root/repo/build/tests/test_gate_alloc [==[--gtest_filter=GateSimAllocation.SteadyStateHotPathIsAllocationFree]==] --gtest_also_run_disabled_tests)
set_tests_properties([=[GateSimAllocation.SteadyStateHotPathIsAllocationFree]=]  PROPERTIES WORKING_DIRECTORY /root/repo/build/tests SKIP_REGULAR_EXPRESSION [==[\[  SKIPPED \]]==])
set(  test_gate_alloc_TESTS GateSimAllocation.SteadyStateHotPathIsAllocationFree)
