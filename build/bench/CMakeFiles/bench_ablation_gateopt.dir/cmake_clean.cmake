file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_gateopt.dir/bench_ablation_gateopt.cpp.o"
  "CMakeFiles/bench_ablation_gateopt.dir/bench_ablation_gateopt.cpp.o.d"
  "bench_ablation_gateopt"
  "bench_ablation_gateopt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_gateopt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
