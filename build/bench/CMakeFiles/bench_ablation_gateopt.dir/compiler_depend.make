# Empty compiler generated dependencies file for bench_ablation_gateopt.
# This may be replaced when dependencies are built.
