# Empty dependencies file for bench_fig9_cosim.
# This may be replaced when dependencies are built.
