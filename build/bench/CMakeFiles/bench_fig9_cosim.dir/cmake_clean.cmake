file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_cosim.dir/bench_fig9_cosim.cpp.o"
  "CMakeFiles/bench_fig9_cosim.dir/bench_fig9_cosim.cpp.o.d"
  "bench_fig9_cosim"
  "bench_fig9_cosim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_cosim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
