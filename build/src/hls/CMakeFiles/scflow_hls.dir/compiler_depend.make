# Empty compiler generated dependencies file for scflow_hls.
# This may be replaced when dependencies are built.
