file(REMOVE_RECURSE
  "libscflow_hls.a"
)
