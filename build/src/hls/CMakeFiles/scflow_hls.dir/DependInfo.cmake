
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hls/schedule.cpp" "src/hls/CMakeFiles/scflow_hls.dir/schedule.cpp.o" "gcc" "src/hls/CMakeFiles/scflow_hls.dir/schedule.cpp.o.d"
  "/root/repo/src/hls/src_beh.cpp" "src/hls/CMakeFiles/scflow_hls.dir/src_beh.cpp.o" "gcc" "src/hls/CMakeFiles/scflow_hls.dir/src_beh.cpp.o.d"
  "/root/repo/src/hls/synthesize.cpp" "src/hls/CMakeFiles/scflow_hls.dir/synthesize.cpp.o" "gcc" "src/hls/CMakeFiles/scflow_hls.dir/synthesize.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/rtl/CMakeFiles/scflow_rtl.dir/DependInfo.cmake"
  "/root/repo/build/src/dsp/CMakeFiles/scflow_dsp.dir/DependInfo.cmake"
  "/root/repo/build/src/dtypes/CMakeFiles/scflow_dtypes.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
