file(REMOVE_RECURSE
  "CMakeFiles/scflow_hls.dir/schedule.cpp.o"
  "CMakeFiles/scflow_hls.dir/schedule.cpp.o.d"
  "CMakeFiles/scflow_hls.dir/src_beh.cpp.o"
  "CMakeFiles/scflow_hls.dir/src_beh.cpp.o.d"
  "CMakeFiles/scflow_hls.dir/synthesize.cpp.o"
  "CMakeFiles/scflow_hls.dir/synthesize.cpp.o.d"
  "libscflow_hls.a"
  "libscflow_hls.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scflow_hls.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
