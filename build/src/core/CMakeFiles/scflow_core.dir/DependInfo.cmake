
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/channel_src.cpp" "src/core/CMakeFiles/scflow_core.dir/channel_src.cpp.o" "gcc" "src/core/CMakeFiles/scflow_core.dir/channel_src.cpp.o.d"
  "/root/repo/src/core/run.cpp" "src/core/CMakeFiles/scflow_core.dir/run.cpp.o" "gcc" "src/core/CMakeFiles/scflow_core.dir/run.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dsp/CMakeFiles/scflow_dsp.dir/DependInfo.cmake"
  "/root/repo/build/src/kernel/CMakeFiles/scflow_kernel.dir/DependInfo.cmake"
  "/root/repo/build/src/dtypes/CMakeFiles/scflow_dtypes.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
