file(REMOVE_RECURSE
  "CMakeFiles/scflow_core.dir/channel_src.cpp.o"
  "CMakeFiles/scflow_core.dir/channel_src.cpp.o.d"
  "CMakeFiles/scflow_core.dir/run.cpp.o"
  "CMakeFiles/scflow_core.dir/run.cpp.o.d"
  "libscflow_core.a"
  "libscflow_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scflow_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
