file(REMOVE_RECURSE
  "libscflow_core.a"
)
