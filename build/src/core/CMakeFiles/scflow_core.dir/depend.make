# Empty dependencies file for scflow_core.
# This may be replaced when dependencies are built.
