# Empty compiler generated dependencies file for scflow_flow.
# This may be replaced when dependencies are built.
