file(REMOVE_RECURSE
  "libscflow_flow.a"
)
