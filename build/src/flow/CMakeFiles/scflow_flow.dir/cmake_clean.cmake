file(REMOVE_RECURSE
  "CMakeFiles/scflow_flow.dir/refinement_flow.cpp.o"
  "CMakeFiles/scflow_flow.dir/refinement_flow.cpp.o.d"
  "CMakeFiles/scflow_flow.dir/synthesis_flow.cpp.o"
  "CMakeFiles/scflow_flow.dir/synthesis_flow.cpp.o.d"
  "libscflow_flow.a"
  "libscflow_flow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scflow_flow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
