file(REMOVE_RECURSE
  "libscflow_dsp.a"
)
