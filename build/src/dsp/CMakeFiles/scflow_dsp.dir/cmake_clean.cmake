file(REMOVE_RECURSE
  "CMakeFiles/scflow_dsp.dir/filter_design.cpp.o"
  "CMakeFiles/scflow_dsp.dir/filter_design.cpp.o.d"
  "CMakeFiles/scflow_dsp.dir/golden_src.cpp.o"
  "CMakeFiles/scflow_dsp.dir/golden_src.cpp.o.d"
  "CMakeFiles/scflow_dsp.dir/polyphase.cpp.o"
  "CMakeFiles/scflow_dsp.dir/polyphase.cpp.o.d"
  "CMakeFiles/scflow_dsp.dir/stimulus.cpp.o"
  "CMakeFiles/scflow_dsp.dir/stimulus.cpp.o.d"
  "libscflow_dsp.a"
  "libscflow_dsp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scflow_dsp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
