# Empty dependencies file for scflow_dsp.
# This may be replaced when dependencies are built.
