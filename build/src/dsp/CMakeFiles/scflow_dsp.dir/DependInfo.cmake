
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dsp/filter_design.cpp" "src/dsp/CMakeFiles/scflow_dsp.dir/filter_design.cpp.o" "gcc" "src/dsp/CMakeFiles/scflow_dsp.dir/filter_design.cpp.o.d"
  "/root/repo/src/dsp/golden_src.cpp" "src/dsp/CMakeFiles/scflow_dsp.dir/golden_src.cpp.o" "gcc" "src/dsp/CMakeFiles/scflow_dsp.dir/golden_src.cpp.o.d"
  "/root/repo/src/dsp/polyphase.cpp" "src/dsp/CMakeFiles/scflow_dsp.dir/polyphase.cpp.o" "gcc" "src/dsp/CMakeFiles/scflow_dsp.dir/polyphase.cpp.o.d"
  "/root/repo/src/dsp/stimulus.cpp" "src/dsp/CMakeFiles/scflow_dsp.dir/stimulus.cpp.o" "gcc" "src/dsp/CMakeFiles/scflow_dsp.dir/stimulus.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dtypes/CMakeFiles/scflow_dtypes.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
