# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("dtypes")
subdirs("kernel")
subdirs("dsp")
subdirs("core")
subdirs("rtl")
subdirs("hls")
subdirs("netlist")
subdirs("hdlsim")
subdirs("cosim")
subdirs("verilog")
subdirs("flow")
