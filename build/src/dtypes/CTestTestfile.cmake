# CMake generated Testfile for 
# Source directory: /root/repo/src/dtypes
# Build directory: /root/repo/build/src/dtypes
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
