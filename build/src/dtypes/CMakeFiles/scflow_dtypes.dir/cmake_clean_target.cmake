file(REMOVE_RECURSE
  "libscflow_dtypes.a"
)
