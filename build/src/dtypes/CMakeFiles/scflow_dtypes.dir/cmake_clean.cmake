file(REMOVE_RECURSE
  "CMakeFiles/scflow_dtypes.dir/logic.cpp.o"
  "CMakeFiles/scflow_dtypes.dir/logic.cpp.o.d"
  "libscflow_dtypes.a"
  "libscflow_dtypes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scflow_dtypes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
