# Empty dependencies file for scflow_dtypes.
# This may be replaced when dependencies are built.
