# Empty compiler generated dependencies file for scflow_netlist.
# This may be replaced when dependencies are built.
