
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/netlist/lower.cpp" "src/netlist/CMakeFiles/scflow_netlist.dir/lower.cpp.o" "gcc" "src/netlist/CMakeFiles/scflow_netlist.dir/lower.cpp.o.d"
  "/root/repo/src/netlist/netlist.cpp" "src/netlist/CMakeFiles/scflow_netlist.dir/netlist.cpp.o" "gcc" "src/netlist/CMakeFiles/scflow_netlist.dir/netlist.cpp.o.d"
  "/root/repo/src/netlist/opt.cpp" "src/netlist/CMakeFiles/scflow_netlist.dir/opt.cpp.o" "gcc" "src/netlist/CMakeFiles/scflow_netlist.dir/opt.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/rtl/CMakeFiles/scflow_rtl.dir/DependInfo.cmake"
  "/root/repo/build/src/dsp/CMakeFiles/scflow_dsp.dir/DependInfo.cmake"
  "/root/repo/build/src/dtypes/CMakeFiles/scflow_dtypes.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
