file(REMOVE_RECURSE
  "libscflow_netlist.a"
)
