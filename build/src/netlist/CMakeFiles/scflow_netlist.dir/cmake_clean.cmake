file(REMOVE_RECURSE
  "CMakeFiles/scflow_netlist.dir/lower.cpp.o"
  "CMakeFiles/scflow_netlist.dir/lower.cpp.o.d"
  "CMakeFiles/scflow_netlist.dir/netlist.cpp.o"
  "CMakeFiles/scflow_netlist.dir/netlist.cpp.o.d"
  "CMakeFiles/scflow_netlist.dir/opt.cpp.o"
  "CMakeFiles/scflow_netlist.dir/opt.cpp.o.d"
  "libscflow_netlist.a"
  "libscflow_netlist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scflow_netlist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
