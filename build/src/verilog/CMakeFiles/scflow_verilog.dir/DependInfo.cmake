
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/verilog/parser.cpp" "src/verilog/CMakeFiles/scflow_verilog.dir/parser.cpp.o" "gcc" "src/verilog/CMakeFiles/scflow_verilog.dir/parser.cpp.o.d"
  "/root/repo/src/verilog/writer.cpp" "src/verilog/CMakeFiles/scflow_verilog.dir/writer.cpp.o" "gcc" "src/verilog/CMakeFiles/scflow_verilog.dir/writer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/netlist/CMakeFiles/scflow_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/rtl/CMakeFiles/scflow_rtl.dir/DependInfo.cmake"
  "/root/repo/build/src/dsp/CMakeFiles/scflow_dsp.dir/DependInfo.cmake"
  "/root/repo/build/src/dtypes/CMakeFiles/scflow_dtypes.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
