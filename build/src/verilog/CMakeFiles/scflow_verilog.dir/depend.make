# Empty dependencies file for scflow_verilog.
# This may be replaced when dependencies are built.
