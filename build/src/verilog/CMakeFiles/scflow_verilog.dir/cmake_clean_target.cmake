file(REMOVE_RECURSE
  "libscflow_verilog.a"
)
