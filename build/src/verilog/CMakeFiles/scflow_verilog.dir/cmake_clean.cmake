file(REMOVE_RECURSE
  "CMakeFiles/scflow_verilog.dir/parser.cpp.o"
  "CMakeFiles/scflow_verilog.dir/parser.cpp.o.d"
  "CMakeFiles/scflow_verilog.dir/writer.cpp.o"
  "CMakeFiles/scflow_verilog.dir/writer.cpp.o.d"
  "libscflow_verilog.a"
  "libscflow_verilog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scflow_verilog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
