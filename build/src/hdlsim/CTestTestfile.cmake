# CMake generated Testfile for 
# Source directory: /root/repo/src/hdlsim
# Build directory: /root/repo/build/src/hdlsim
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
