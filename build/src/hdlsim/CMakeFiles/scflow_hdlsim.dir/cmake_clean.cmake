file(REMOVE_RECURSE
  "CMakeFiles/scflow_hdlsim.dir/gate_sim.cpp.o"
  "CMakeFiles/scflow_hdlsim.dir/gate_sim.cpp.o.d"
  "CMakeFiles/scflow_hdlsim.dir/src_gate_sim.cpp.o"
  "CMakeFiles/scflow_hdlsim.dir/src_gate_sim.cpp.o.d"
  "CMakeFiles/scflow_hdlsim.dir/testbench_vm.cpp.o"
  "CMakeFiles/scflow_hdlsim.dir/testbench_vm.cpp.o.d"
  "libscflow_hdlsim.a"
  "libscflow_hdlsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scflow_hdlsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
