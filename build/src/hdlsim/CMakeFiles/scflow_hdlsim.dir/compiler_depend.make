# Empty compiler generated dependencies file for scflow_hdlsim.
# This may be replaced when dependencies are built.
