file(REMOVE_RECURSE
  "libscflow_hdlsim.a"
)
