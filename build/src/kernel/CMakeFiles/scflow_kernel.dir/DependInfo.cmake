
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/kernel/clock.cpp" "src/kernel/CMakeFiles/scflow_kernel.dir/clock.cpp.o" "gcc" "src/kernel/CMakeFiles/scflow_kernel.dir/clock.cpp.o.d"
  "/root/repo/src/kernel/event.cpp" "src/kernel/CMakeFiles/scflow_kernel.dir/event.cpp.o" "gcc" "src/kernel/CMakeFiles/scflow_kernel.dir/event.cpp.o.d"
  "/root/repo/src/kernel/object.cpp" "src/kernel/CMakeFiles/scflow_kernel.dir/object.cpp.o" "gcc" "src/kernel/CMakeFiles/scflow_kernel.dir/object.cpp.o.d"
  "/root/repo/src/kernel/process.cpp" "src/kernel/CMakeFiles/scflow_kernel.dir/process.cpp.o" "gcc" "src/kernel/CMakeFiles/scflow_kernel.dir/process.cpp.o.d"
  "/root/repo/src/kernel/simulation.cpp" "src/kernel/CMakeFiles/scflow_kernel.dir/simulation.cpp.o" "gcc" "src/kernel/CMakeFiles/scflow_kernel.dir/simulation.cpp.o.d"
  "/root/repo/src/kernel/vcd.cpp" "src/kernel/CMakeFiles/scflow_kernel.dir/vcd.cpp.o" "gcc" "src/kernel/CMakeFiles/scflow_kernel.dir/vcd.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dtypes/CMakeFiles/scflow_dtypes.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
