file(REMOVE_RECURSE
  "CMakeFiles/scflow_kernel.dir/clock.cpp.o"
  "CMakeFiles/scflow_kernel.dir/clock.cpp.o.d"
  "CMakeFiles/scflow_kernel.dir/event.cpp.o"
  "CMakeFiles/scflow_kernel.dir/event.cpp.o.d"
  "CMakeFiles/scflow_kernel.dir/object.cpp.o"
  "CMakeFiles/scflow_kernel.dir/object.cpp.o.d"
  "CMakeFiles/scflow_kernel.dir/process.cpp.o"
  "CMakeFiles/scflow_kernel.dir/process.cpp.o.d"
  "CMakeFiles/scflow_kernel.dir/simulation.cpp.o"
  "CMakeFiles/scflow_kernel.dir/simulation.cpp.o.d"
  "CMakeFiles/scflow_kernel.dir/vcd.cpp.o"
  "CMakeFiles/scflow_kernel.dir/vcd.cpp.o.d"
  "libscflow_kernel.a"
  "libscflow_kernel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scflow_kernel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
