# Empty compiler generated dependencies file for scflow_kernel.
# This may be replaced when dependencies are built.
