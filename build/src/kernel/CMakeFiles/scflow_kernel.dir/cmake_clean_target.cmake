file(REMOVE_RECURSE
  "libscflow_kernel.a"
)
