# Empty dependencies file for scflow_rtl.
# This may be replaced when dependencies are built.
