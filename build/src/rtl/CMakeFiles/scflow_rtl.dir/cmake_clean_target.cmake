file(REMOVE_RECURSE
  "libscflow_rtl.a"
)
