file(REMOVE_RECURSE
  "CMakeFiles/scflow_rtl.dir/builder.cpp.o"
  "CMakeFiles/scflow_rtl.dir/builder.cpp.o.d"
  "CMakeFiles/scflow_rtl.dir/interpreter.cpp.o"
  "CMakeFiles/scflow_rtl.dir/interpreter.cpp.o.d"
  "CMakeFiles/scflow_rtl.dir/ir.cpp.o"
  "CMakeFiles/scflow_rtl.dir/ir.cpp.o.d"
  "CMakeFiles/scflow_rtl.dir/passes.cpp.o"
  "CMakeFiles/scflow_rtl.dir/passes.cpp.o.d"
  "CMakeFiles/scflow_rtl.dir/src_design.cpp.o"
  "CMakeFiles/scflow_rtl.dir/src_design.cpp.o.d"
  "CMakeFiles/scflow_rtl.dir/src_sim.cpp.o"
  "CMakeFiles/scflow_rtl.dir/src_sim.cpp.o.d"
  "libscflow_rtl.a"
  "libscflow_rtl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scflow_rtl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
