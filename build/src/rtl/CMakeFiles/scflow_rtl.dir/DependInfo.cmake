
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rtl/builder.cpp" "src/rtl/CMakeFiles/scflow_rtl.dir/builder.cpp.o" "gcc" "src/rtl/CMakeFiles/scflow_rtl.dir/builder.cpp.o.d"
  "/root/repo/src/rtl/interpreter.cpp" "src/rtl/CMakeFiles/scflow_rtl.dir/interpreter.cpp.o" "gcc" "src/rtl/CMakeFiles/scflow_rtl.dir/interpreter.cpp.o.d"
  "/root/repo/src/rtl/ir.cpp" "src/rtl/CMakeFiles/scflow_rtl.dir/ir.cpp.o" "gcc" "src/rtl/CMakeFiles/scflow_rtl.dir/ir.cpp.o.d"
  "/root/repo/src/rtl/passes.cpp" "src/rtl/CMakeFiles/scflow_rtl.dir/passes.cpp.o" "gcc" "src/rtl/CMakeFiles/scflow_rtl.dir/passes.cpp.o.d"
  "/root/repo/src/rtl/src_design.cpp" "src/rtl/CMakeFiles/scflow_rtl.dir/src_design.cpp.o" "gcc" "src/rtl/CMakeFiles/scflow_rtl.dir/src_design.cpp.o.d"
  "/root/repo/src/rtl/src_sim.cpp" "src/rtl/CMakeFiles/scflow_rtl.dir/src_sim.cpp.o" "gcc" "src/rtl/CMakeFiles/scflow_rtl.dir/src_sim.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dtypes/CMakeFiles/scflow_dtypes.dir/DependInfo.cmake"
  "/root/repo/build/src/dsp/CMakeFiles/scflow_dsp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
