file(REMOVE_RECURSE
  "CMakeFiles/scflow_cosim.dir/bridge.cpp.o"
  "CMakeFiles/scflow_cosim.dir/bridge.cpp.o.d"
  "libscflow_cosim.a"
  "libscflow_cosim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scflow_cosim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
