file(REMOVE_RECURSE
  "libscflow_cosim.a"
)
