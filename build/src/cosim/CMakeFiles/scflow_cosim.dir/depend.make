# Empty dependencies file for scflow_cosim.
# This may be replaced when dependencies are built.
