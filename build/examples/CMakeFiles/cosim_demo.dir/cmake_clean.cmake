file(REMOVE_RECURSE
  "CMakeFiles/cosim_demo.dir/cosim_demo.cpp.o"
  "CMakeFiles/cosim_demo.dir/cosim_demo.cpp.o.d"
  "cosim_demo"
  "cosim_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cosim_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
