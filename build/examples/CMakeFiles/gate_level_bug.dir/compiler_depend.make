# Empty compiler generated dependencies file for gate_level_bug.
# This may be replaced when dependencies are built.
