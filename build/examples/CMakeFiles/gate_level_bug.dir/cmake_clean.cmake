file(REMOVE_RECURSE
  "CMakeFiles/gate_level_bug.dir/gate_level_bug.cpp.o"
  "CMakeFiles/gate_level_bug.dir/gate_level_bug.cpp.o.d"
  "gate_level_bug"
  "gate_level_bug.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gate_level_bug.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
