# Empty dependencies file for refinement_flow.
# This may be replaced when dependencies are built.
