file(REMOVE_RECURSE
  "CMakeFiles/refinement_flow.dir/refinement_flow.cpp.o"
  "CMakeFiles/refinement_flow.dir/refinement_flow.cpp.o.d"
  "refinement_flow"
  "refinement_flow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/refinement_flow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
